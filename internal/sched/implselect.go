package sched

import (
	"math"

	"resched/internal/taskgraph"
)

// implCost computes eq. (3): the cost of a hardware implementation combines
// its weighted relative resource footprint on the device with its execution
// time normalised by maxT (the fully-serial lower-bound schedule length).
// Scarce resources weigh more (eq. (4)).
func (s *state) implCost(im taskgraph.Implementation, maxT int64) float64 {
	den := s.weights.Weighted(s.a.MaxRes)
	var resTerm float64
	if den > 0 {
		resTerm = s.weights.Weighted(im.Res) / den
	}
	var timeTerm float64
	if maxT > 0 {
		timeTerm = float64(im.Time) / float64(maxT)
	}
	return resTerm + timeTerm
}

// maxT computes Σ_t min_{i∈I_t} time_i (eq. (4)).
func (s *state) maxT() int64 {
	var sum int64
	for _, t := range s.g.Tasks {
		sum += t.MinTime()
	}
	return sum
}

// efficiency computes eq. (5): the ratio between an implementation's
// execution time and its weighted resource footprint. Resource-efficient
// implementations (high ratio) spread load over the reconfigurable logic.
func (s *state) efficiency(im taskgraph.Implementation) float64 {
	den := s.weights.Weighted(im.Res)
	if den <= 0 {
		return math.Inf(1)
	}
	return float64(im.Time) / den
}

// selectImplementations runs phase 1 (§V-A): for every task pick the
// lowest-cost hardware implementation and the fastest software
// implementation, then keep whichever executes faster (HW preferred on
// ties).
func (s *state) selectImplementations() {
	mt := s.maxT()
	for _, task := range s.g.Tasks {
		bestHW, bestHWCost := -1, 0.0
		for _, i := range task.HWImpls() {
			c := s.implCost(task.Impls[i], mt)
			switch {
			case bestHW < 0 || c < bestHWCost:
				bestHW, bestHWCost = i, c
			case bestHWCost < c:
				// strictly worse
			case task.Impls[i].Time < task.Impls[bestHW].Time:
				// cost tie: prefer the faster implementation
				bestHW, bestHWCost = i, c
			}
		}
		bestSW := task.FastestSW()
		switch {
		case bestHW < 0:
			s.setImpl(task.ID, bestSW)
		case bestSW < 0:
			s.setImpl(task.ID, bestHW)
		case task.Impls[bestSW].Time < task.Impls[bestHW].Time:
			s.setImpl(task.ID, bestSW)
		default:
			s.setImpl(task.ID, bestHW)
		}
	}
}
