package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"resched/internal/arch"
	"resched/internal/budget"
	"resched/internal/floorplan"
	"resched/internal/obs"
	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

// mixSeed derives worker w's private generator seed from the search seed
// with a SplitMix64 finalising round, so the per-worker streams are
// decorrelated even for adjacent seeds or worker indices. Worker streams are
// a documented part of the output contract: schedules for a fixed
// (Seed, Workers, MaxIterations) depend on these exact values.
func mixSeed(seed int64, w int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(w+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// sharedCapFactor is the monotonically non-increasing capacity-factor
// aggregate reported by RandomStats.CapacityFactor for a parallel search.
// Workers lower it whenever their local factor shrinks; it never rises.
// It is reporting-only: scheduling decisions use the worker-local factors
// exclusively, which is what keeps the search independent of goroutine
// interleaving.
type sharedCapFactor struct {
	mu  sync.Mutex
	min float64
}

func (c *sharedCapFactor) lower(v float64) {
	c.mu.Lock()
	if v < c.min {
		c.min = v
	}
	c.mu.Unlock()
}

func (c *sharedCapFactor) value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.min
}

// parResult is one worker's contribution to the reduction.
type parResult struct {
	best      *schedule.Schedule
	bestIter  int // global iteration that produced best (for the total order)
	stats     RandomStats
	capFactor float64
	err       error
}

// rscheduleParallel is the PA-R search with a worker pool (Workers > 1).
//
// Iteration assignment is strided: worker w owns global iterations
// w, w+W, w+2W, … — the same global sequence 0,1,2,… a sequential search
// walks, partitioned statically so no cross-worker coordination decides who
// runs what. Global iteration 0 keeps the sequential search's special case
// (the deterministic efficiency ordering, Rand == nil); every other
// iteration draws from its owner's private generator seeded with
// mixSeed(Seed, w), consumed strictly in the worker's own iteration order.
// Each worker keeps a private incumbent, capacity factor and scratch arena,
// so nothing a worker computes depends on any other worker's progress.
//
// The reduction picks the final schedule under the total order
// (makespan, worker index, global iteration): lowest makespan wins, ties go
// to the lowest worker index and then the earliest iteration. Since every
// per-worker result is a pure function of (Seed, Workers, MaxIterations)
// and the order is total, the returned schedule is bit-identical across
// runs regardless of interleaving.
func rscheduleParallel(g *taskgraph.Graph, a *arch.Architecture, fabric *arch.Fabric, opts RandomOptions, workers int) (*schedule.Schedule, *RandomStats, error) {
	start := time.Now()
	// One timeout child shared by every worker: deadline and node cap live
	// in the shared budget state, so exhaustion observed by one worker is
	// observed by all at their next check. The deferred Cancel retires the
	// child once every worker has joined; it cannot poison the caller's
	// budget tree because Cancel flows downward only.
	bud := opts.Budget.WithTimeout(opts.TimeBudget)
	defer bud.Cancel()
	shared := &sharedCapFactor{min: 1.0}
	// stop propagates a hard error: the failing worker raises the flag and
	// the others exit at their next iteration boundary without cancelling
	// the shared child — the survivors' partial results stay comparable.
	var stop atomic.Bool

	// A warm-start incumbent is a fixed input, so handing its makespan to
	// every worker as the initial improvement bar keeps the workers
	// independent of each other: each still computes a pure function of
	// (Seed, Workers, MaxIterations, InitialIncumbent).
	var incumbent *schedule.Schedule
	var bar int64 // 0 = no bar
	if usableIncumbent(opts.InitialIncumbent, g) {
		incumbent, bar = opts.InitialIncumbent, opts.InitialIncumbent.Makespan
		opts.Trace.Count("par.incumbent_seeded", 1)
	}

	results := make([]parResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = runParWorker(g, a, fabric, opts, bud, shared, &stop, w, workers, bar, start)
		}(w)
	}
	wg.Wait()

	stats := &RandomStats{CapacityFactor: shared.value()}
	var best *schedule.Schedule
	bestWorker, bestIter := -1, -1
	for w := range results {
		r := &results[w]
		if r.err != nil {
			return nil, nil, r.err
		}
		stats.Iterations += r.stats.Iterations
		stats.FloorplanCalls += r.stats.FloorplanCalls
		stats.Discarded += r.stats.Discarded
		stats.SchedulingTime += r.stats.SchedulingTime
		stats.FloorplanTime += r.stats.FloorplanTime
		stats.History = append(stats.History, r.stats.History...)
		if r.best == nil {
			continue
		}
		if best == nil || r.best.Makespan < best.Makespan ||
			(r.best.Makespan == best.Makespan && (w < bestWorker ||
				(w == bestWorker && r.bestIter < bestIter))) {
			best, bestWorker, bestIter = r.best, w, r.bestIter
		}
	}
	// Per-worker histories are each strictly improving; the merged view is
	// ordered by wall-clock so the anytime-convergence plots read left to
	// right. Ties keep worker order (stable sort), which also keeps the
	// slice deterministic under the fake clocks tests install.
	sort.SliceStable(stats.History, func(i, j int) bool {
		return stats.History[i].Elapsed < stats.History[j].Elapsed
	})
	stats.Elapsed = time.Since(start)
	// Incumbent-improvement events are deferred to the merge and emitted in
	// global-iteration order (each global iteration belongs to exactly one
	// worker, so the key is unique): emitting them inline from the workers
	// would record them in goroutine arrival order, and the wall-clock
	// Elapsed ordering above legitimately varies between repetitions. This
	// keeps the flight recorder deterministic for a fixed (Seed, Workers,
	// MaxIterations).
	if opts.Trace.Enabled() {
		improved := append([]ImprovementPoint(nil), stats.History...)
		// Iteration is unique across the merged histories (one owner per
		// global iteration), so stability is moot — but SliceStable keeps
		// the sortstable gate satisfied without a second key.
		sort.SliceStable(improved, func(i, j int) bool {
			return improved[i].Iteration < improved[j].Iteration
		})
		for _, p := range improved {
			opts.Trace.Event("par.improved",
				obs.Int("iteration", int64(p.Iteration)), obs.Int("makespan", p.Makespan))
		}
	}
	opts.Trace.Count("par.iterations", int64(stats.Iterations))
	opts.Trace.Count("par.floorplan_calls", int64(stats.FloorplanCalls))
	opts.Trace.SetGauge("par.capacity_factor", stats.CapacityFactor)
	if best == nil && incumbent != nil {
		// No worker beat the warm-start bar: the incumbent stands.
		return incumbent, stats, nil
	}
	if best == nil {
		// Same fallback as the sequential search: the deterministic
		// scheduler under the caller's overall budget.
		sch, _, err := Schedule(g, a, Options{
			ModuleReuse: opts.ModuleReuse, Floorplan: opts.Floorplan,
			Initial: opts.Initial,
			Budget:  opts.Budget, Faults: opts.Faults, Trace: opts.Trace,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("sched: PA-R found no feasible schedule: %w", err)
		}
		sch.Algorithm = "PA-R"
		return sch, stats, nil
	}
	return best, stats, nil
}

// runParWorker executes worker w's share of the global iteration sequence.
// Everything that influences scheduling decisions is worker-local: the
// generator, the incumbent that gates floorplan queries, the capacity
// factor and the scratch arena.
func runParWorker(g *taskgraph.Graph, a *arch.Architecture, fabric *arch.Fabric, opts RandomOptions, bud *budget.Budget, shared *sharedCapFactor, stop *atomic.Bool, w, workers int, bar int64, start time.Time) parResult {
	res := parResult{capFactor: 1.0}
	rng := rand.New(rand.NewSource(mixSeed(opts.Seed, w)))
	inner := Options{
		ModuleReuse:   opts.ModuleReuse,
		SkipFloorplan: true,
		Rand:          rng,
		Budget:        bud,
		Initial:       opts.Initial,
		scratch:       &state{},
	}
	for k := 0; ; k++ {
		giter := w + k*workers
		if opts.MaxIterations > 0 && giter >= opts.MaxIterations {
			break
		}
		if stop.Load() || bud.Check() != nil {
			break
		}
		maxRes := a.MaxRes
		for j := range maxRes {
			maxRes[j] = int(float64(maxRes[j]) * res.capFactor)
		}
		runOpts := inner
		if giter == 0 {
			// Global iteration 0 is the deterministic efficiency ordering,
			// exactly as in the sequential search; the generator is not
			// consumed.
			runOpts.Rand = nil
		}
		// Iteration spans are detached roots: the trace's nesting stack is a
		// single sequential chain, so concurrent workers must not push onto
		// it (see obs.StartRoot).
		it := opts.Trace.StartRoot("par.iteration",
			obs.Int("iteration", int64(giter)), obs.Int("worker", int64(w)))
		innerBegin := time.Now()
		sch, regionRes, err := runPipeline(g, a, maxRes, runOpts)
		innerElapsed := time.Since(innerBegin)
		res.stats.SchedulingTime += innerElapsed
		opts.Trace.Observe("par.iteration_us", float64(innerElapsed.Nanoseconds())/1e3)
		if err != nil {
			if errors.Is(err, budget.ErrExhausted) {
				it.End(obs.Str("outcome", "budget"))
				break
			}
			it.End(obs.Str("outcome", "error"))
			res.err = err
			stop.Store(true)
			break
		}
		res.stats.Iterations++
		// The improvement bar is the worker's own best when it has one, else
		// the warm-start incumbent's makespan (bar == 0 means neither).
		limit := bar
		if res.best != nil {
			limit = res.best.Makespan
		}
		if limit > 0 && sch.Makespan >= limit {
			it.End(obs.Str("outcome", "not-improving"))
			continue
		}
		res.stats.FloorplanCalls++
		fpOpts := opts.Floorplan
		if fpOpts.Budget == nil {
			fpOpts.Budget = bud
		}
		if fpOpts.Faults == nil {
			fpOpts.Faults = opts.Faults
		}
		if fpOpts.MaxNodes == 0 {
			fpOpts.MaxNodes = 20000
		}
		fpBegin := time.Now()
		fp, err := floorplan.Solve(fabric, regionRes, fpOpts)
		res.stats.FloorplanTime += time.Since(fpBegin)
		if err != nil {
			it.End(obs.Str("outcome", "error"))
			res.err = err
			stop.Store(true)
			break
		}
		if !fp.Feasible {
			res.stats.Discarded++
			opts.Trace.Count("par.discarded", 1)
			if res.capFactor > capFloor {
				res.capFactor *= capShrink
				shared.lower(res.capFactor)
			}
			it.End(obs.Str("outcome", "infeasible"))
			continue
		}
		sch.Algorithm = "PA-R"
		res.best, res.bestIter = sch, giter
		opts.Trace.Count("par.improvements", 1)
		res.stats.History = append(res.stats.History, ImprovementPoint{
			Elapsed:   time.Since(start),
			Iteration: giter + 1,
			Makespan:  sch.Makespan,
		})
		it.End(obs.Str("outcome", "improved"), obs.Int("makespan", sch.Makespan))
	}
	return res
}
