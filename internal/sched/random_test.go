package sched

import (
	"testing"
	"time"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/schedule"
)

func TestRScheduleValid(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 30, Seed: 4})
	a := arch.ZedBoard()
	// Workers: 1 pins the sequential search — the assertions below (strictly
	// improving history whose last entry is the returned schedule) are
	// sequential-only contracts; a merged parallel history interleaves
	// per-worker subsequences.
	sch, stats, err := RSchedule(g, a, RandomOptions{MaxIterations: 20, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if errs := schedule.Check(sch); len(errs) > 0 {
		t.Fatalf("invalid PA-R schedule: %v", errs)
	}
	if sch.Algorithm != "PA-R" {
		t.Errorf("algorithm = %q", sch.Algorithm)
	}
	if stats.Iterations != 20 {
		t.Errorf("iterations = %d, want 20", stats.Iterations)
	}
	if len(stats.History) == 0 {
		t.Error("no improvements recorded on a fresh search")
	}
	// History must be strictly improving.
	for i := 1; i < len(stats.History); i++ {
		if stats.History[i].Makespan >= stats.History[i-1].Makespan {
			t.Errorf("history not improving: %v", stats.History)
		}
	}
	// The final schedule equals the last history point.
	if last := stats.History[len(stats.History)-1]; last.Makespan != sch.Makespan {
		t.Errorf("returned makespan %d, history ends at %d", sch.Makespan, last.Makespan)
	}
}

func TestRScheduleReproducible(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 25, Seed: 2})
	a := arch.ZedBoard()
	s1, _, err := RSchedule(g, a, RandomOptions{MaxIterations: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := RSchedule(g, a, RandomOptions{MaxIterations: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Makespan != s2.Makespan {
		t.Errorf("same seed, different makespans: %d vs %d", s1.Makespan, s2.Makespan)
	}
}

func TestRScheduleAtLeastMatchesPAWithEnoughIterations(t *testing.T) {
	// PA-R explores random orderings; with a reasonable budget it should
	// find a schedule no worse than within a small factor of PA. (It is a
	// different ordering family, so exact dominance is not guaranteed;
	// across the suite PA-R wins on average — that is Fig. 5's claim.)
	a := arch.ZedBoard()
	worse := 0
	for seed := int64(0); seed < 4; seed++ {
		g := genGraph(t, benchgen.Config{Tasks: 40, Seed: 100 + seed})
		pa, _, err := Schedule(g, a, Options{})
		if err != nil {
			t.Fatal(err)
		}
		par, _, err := RSchedule(g, a, RandomOptions{MaxIterations: 60, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if par.Makespan > pa.Makespan {
			worse++
		}
	}
	if worse > 1 {
		t.Errorf("PA-R with 60 iterations lost to PA on %d/4 instances", worse)
	}
}

func TestRScheduleTimeBudget(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 20, Seed: 3})
	a := arch.ZedBoard()
	start := time.Now()
	sch, stats, err := RSchedule(g, a, RandomOptions{TimeBudget: 50 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sch == nil || stats.Iterations == 0 {
		t.Fatal("no iterations within the budget")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("budget wildly exceeded: %v", elapsed)
	}
}

func TestRScheduleNeedsBudget(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 10, Seed: 1})
	if _, _, err := RSchedule(g, arch.ZedBoard(), RandomOptions{}); err == nil {
		t.Error("missing budget accepted")
	}
}

func TestRScheduleNeedsFabric(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 10, Seed: 1})
	a := arch.ZedBoard()
	a.Fabric = nil
	if _, _, err := RSchedule(g, a, RandomOptions{MaxIterations: 3}); err == nil {
		t.Error("fabric-less architecture accepted")
	}
}

func TestRScheduleModuleReuse(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 30, Seed: 6})
	a := arch.ZedBoard()
	sch, _, err := RSchedule(g, a, RandomOptions{MaxIterations: 10, Seed: 2, ModuleReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sch.ModuleReuse {
		t.Error("module reuse flag lost")
	}
	if errs := schedule.Check(sch); len(errs) > 0 {
		t.Fatalf("invalid module-reuse schedule: %v", errs)
	}
}
