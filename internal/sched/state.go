package sched

import (
	"fmt"

	"resched/internal/arch"
	"resched/internal/cpm"
	"resched/internal/floorplan"
	"resched/internal/resources"
	"resched/internal/taskgraph"
)

// state carries the scheduler's working data across the eight phases of §V.
// The combined dependency graph starts as the application task graph and
// grows sequencing edges as tasks are ordered inside reconfigurable regions
// and on processors.
type state struct {
	g *taskgraph.Graph
	a *arch.Architecture
	// maxRes is the (possibly virtually shrunk, §V-H) capacity used for
	// region accounting.
	maxRes  resources.Vector
	weights resources.Weights
	// cellSize[k] is the fabric column-cell granularity of resource kind
	// k (1 when the architecture has no fabric). Region footprints are
	// rounded up to whole cells for capacity accounting, matching what the
	// floorplanner can actually place.
	cellSize resources.Vector
	// footprints caches fabric-aware capacity footprints per requirement.
	footprints map[resources.Vector]resources.Vector
	// strict selects the ablation mode that uses the literal §V-C
	// window-disjointness test instead of slot-insertion compatibility.
	strict bool

	// impl[t] is the selected implementation index of task t.
	impl []int
	// dur[t] is the execution time of the selected implementation.
	dur []int64

	// Combined dependency graph: application edges + sequencing edges.
	succ    [][]int
	pred    [][]int
	edgeSet map[[2]int]bool

	// regions and placement bookkeeping.
	regions  []*regionState
	regionOf []int // region index per task, -1 for software tasks
	procOf   []int // processor per software task, -1 before mapping
	usedRes  resources.Vector

	// release[t] is an externally imposed earliest start (reconfiguration
	// induced delays).
	release []int64

	// Current timing (recomputed by retime): est doubles as the start
	// time, lft is the latest finish without extending the makespan.
	est, lft []int64
	makespan int64
}

// regionState is a reconfigurable region under construction.
type regionState struct {
	id     int
	res    resources.Vector
	bits   int64
	reconf int64
	tasks  []int
}

// newState initialises the working state for one scheduling run.
func newState(g *taskgraph.Graph, a *arch.Architecture, maxRes resources.Vector) *state {
	n := g.N()
	s := &state{
		g:        g,
		a:        a,
		maxRes:   maxRes,
		weights:  resources.WeightsFor(a.MaxRes),
		impl:     make([]int, n),
		dur:      make([]int64, n),
		succ:     make([][]int, n),
		pred:     make([][]int, n),
		edgeSet:  make(map[[2]int]bool, n*2),
		regionOf: make([]int, n),
		procOf:   make([]int, n),
		release:  make([]int64, n),
	}
	for k := range s.cellSize {
		s.cellSize[k] = 1
		if a.Fabric != nil && a.Fabric.UnitsPerCell[k] > 0 {
			s.cellSize[k] = a.Fabric.UnitsPerCell[k]
		}
	}
	for t := 0; t < n; t++ {
		s.succ[t] = append([]int(nil), g.Succ(t)...)
		s.pred[t] = append([]int(nil), g.Pred(t)...)
		s.regionOf[t] = -1
		s.procOf[t] = -1
		for _, v := range g.Succ(t) {
			s.edgeSet[[2]int{t, v}] = true
		}
	}
	return s
}

// footprint estimates the device capacity a region of the given requirement
// will actually consume once placed: the content of its minimal-area
// placement rectangle on the fabric (which includes any columns of other
// kinds the rectangle spans). Without a fabric it falls back to rounding up
// to whole cells per kind. Keeping the accounting aligned with what the
// floorplanner can place makes the §V-H shrink-and-restart loop rare.
func (s *state) footprint(res resources.Vector) resources.Vector {
	if s.a.Fabric != nil {
		if fp, ok := s.footprints[res]; ok {
			return fp
		}
		fp := floorplan.PlacementFootprint(s.a.Fabric, res)
		if s.footprints == nil {
			s.footprints = make(map[resources.Vector]resources.Vector)
		}
		s.footprints[res] = fp
		return fp
	}
	for k, c := range res {
		cell := s.cellSize[k]
		res[k] = (c + cell - 1) / cell * cell
	}
	return res
}

// addEdge inserts a sequencing edge into the combined graph (idempotent).
func (s *state) addEdge(from, to int) {
	if from == to || s.edgeSet[[2]int{from, to}] {
		return
	}
	s.edgeSet[[2]int{from, to}] = true
	s.succ[from] = append(s.succ[from], to)
	s.pred[to] = append(s.pred[to], from)
}

// setImpl selects implementation i for task t and refreshes its duration.
func (s *state) setImpl(t, i int) {
	s.impl[t] = i
	s.dur[t] = s.g.Tasks[t].Impls[i].Time
}

// selectedImpl returns the implementation currently selected for t.
func (s *state) selectedImpl(t int) taskgraph.Implementation {
	return s.g.Tasks[t].Impls[s.impl[t]]
}

// isHW reports whether the selected implementation of t is hardware.
func (s *state) isHW(t int) bool { return s.selectedImpl(t).Kind == taskgraph.HW }

// retime recomputes the time windows over the combined graph: est (which is
// also the start time of the schedule under construction — §V-E sets
// T_START = T_MIN) via a forward pass honouring releases, lft via the
// backward pass against the resulting makespan.
func (s *state) retime() error {
	// Sequencing edges communicate for free; application edges carry their
	// declared communication time.
	r, err := cpm.ComputeEdges(s.g.N(), s.succ, s.pred, s.dur, s.release, -1, s.g.EdgeComm)
	if err != nil {
		return fmt.Errorf("sched: %w", err)
	}
	s.est, s.lft, s.makespan = r.EST, r.LFT, r.Makespan
	return nil
}

// critical reports whether t currently has zero slack.
func (s *state) critical(t int) bool { return s.lft[t]-s.est[t]-s.dur[t] == 0 }

// start and end of task t under the current timing.
func (s *state) start(t int) int64 { return s.est[t] }
func (s *state) end(t int) int64   { return s.est[t] + s.dur[t] }

// window returns [T_MIN, T_MAX] of task t.
func (s *state) window(t int) (int64, int64) { return s.est[t], s.lft[t] }

// delay imposes an earliest start on task t and re-times the schedule.
func (s *state) delay(t int, notBefore int64) error {
	if notBefore <= s.release[t] {
		return nil
	}
	s.release[t] = notBefore
	return s.retime()
}

// newRegion opens a reconfigurable region sized for requirement res.
func (s *state) newRegion(res resources.Vector) *regionState {
	r := &regionState{
		id:     len(s.regions),
		res:    res,
		bits:   s.a.BitstreamBits(res),
		reconf: s.a.ReconfTime(res),
	}
	s.regions = append(s.regions, r)
	s.usedRes = s.usedRes.Add(s.footprint(res))
	return r
}

// assignToRegion places task t in region r and inserts the sequencing edges
// that keep the region's tasks totally ordered by their current windows
// (§V-C: "new dependencies are inserted into the taskgraph to guarantee the
// ordering of tasks inside each reconfigurable region").
func (s *state) assignToRegion(t int, r *regionState) error {
	// Find t's neighbours among the region's tasks using the same slot
	// semantics as windowsCompatible: a task whose fixed slot ends before
	// t's window precedes t, anything else (compatibility guarantees its
	// slot starts after t's window) follows t.
	prev, next := -1, -1
	for _, t2 := range r.tasks {
		if s.end(t2) <= s.est[t] {
			if prev < 0 || s.end(t2) > s.end(prev) {
				prev = t2
			}
		} else {
			if next < 0 || s.est[t2] < s.est[next] {
				next = t2
			}
		}
	}
	if prev >= 0 {
		s.addEdge(prev, t)
	}
	if next >= 0 {
		s.addEdge(t, next)
	}
	r.tasks = append(r.tasks, t)
	s.regionOf[t] = r.id
	return s.retime()
}

// regionTasksByStart returns region r's tasks sorted by current start time.
func (s *state) regionTasksByStart(r *regionState) []int {
	out := append([]int(nil), r.tasks...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (s.est[out[j]] < s.est[out[j-1]] ||
			(s.est[out[j]] == s.est[out[j-1]] && out[j] < out[j-1])); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// fitsDevice reports whether an additional requirement can be accounted on
// the (possibly shrunk) device, in fabric-cell granularity.
func (s *state) fitsDevice(extra resources.Vector) bool {
	return s.usedRes.Add(s.footprint(extra)).Fits(s.maxRes)
}
