package sched

import (
	"fmt"

	"resched/internal/arch"
	"resched/internal/cpm"
	"resched/internal/floorplan"
	"resched/internal/resources"
	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

// state carries the scheduler's working data across the eight phases of §V.
// The combined dependency graph starts as the application task graph and
// grows sequencing edges as tasks are ordered inside reconfigurable regions
// and on processors.
//
// A state is embedded in a scratch arena and reused across shrink-retry
// attempts and PA-R iterations: reset re-slices the preallocated buffers
// instead of reallocating them, which is what keeps the per-iteration
// allocation count flat. A state must only ever be used by one goroutine —
// parallel searches give every worker its own scratch.
//
// The arena marker below enrolls the type with the arenaescape analyzer:
// slices and maps read out of a state must be copied before they reach a
// Result/Stats struct or leave an exported function.
//
//reschedvet:arena
type state struct {
	g *taskgraph.Graph
	a *arch.Architecture
	// maxRes is the (possibly virtually shrunk, §V-H) capacity used for
	// region accounting.
	maxRes  resources.Vector
	weights resources.Weights
	// cellSize[k] is the fabric column-cell granularity of resource kind
	// k (1 when the architecture has no fabric). Region footprints are
	// rounded up to whole cells for capacity accounting, matching what the
	// floorplanner can actually place.
	cellSize resources.Vector
	// footprints caches fabric-aware capacity footprints per requirement.
	// The cache is pure (fabric geometry is immutable) and survives resets.
	footprints map[resources.Vector]resources.Vector
	// strict selects the ablation mode that uses the literal §V-C
	// window-disjointness test instead of slot-insertion compatibility.
	strict bool

	// impl[t] is the selected implementation index of task t.
	impl []int
	// dur[t] is the execution time of the selected implementation.
	dur []int64

	// Combined dependency graph: application edges + sequencing edges.
	// The inner succ/pred slices retain their capacity across resets.
	succ    [][]int
	pred    [][]int
	edgeSet map[[2]int]bool

	// regions and placement bookkeeping. regionPool recycles regionState
	// objects (and their task slices) across resets.
	regions    []*regionState
	regionPool []*regionState
	regionOf   []int // region index per task, -1 for software tasks
	procOf     []int // processor per software task, -1 before mapping
	usedRes    resources.Vector

	// release[t] is an externally imposed earliest start (reconfiguration
	// induced delays, and warm-start floors from frozen predecessors).
	release []int64

	// warm is the initial platform state of a re-plan run (nil for the
	// offline t=0 solve). It is read-only; seedWarm translates it into
	// release floors, warm regions and pins.
	warm *schedule.PlatformState

	// Current timing (recomputed by retime): est doubles as the start
	// time, lft is the latest finish without extending the makespan. Both
	// alias the cpm workspace and are rewritten in place by every retime.
	est, lft []int64
	makespan int64

	// cpmWS reuses the topological-order and timing buffers across the
	// many re-timing passes of a single run (one per sequencing edge).
	cpmWS cpm.Workspace

	// Phase-local scratch buffers, each reused via [:0] re-slicing.
	orderBuf       []int              // hwOrder result
	critBuf        []bool             // per-task criticality snapshot
	regionOrderBuf []int              // regionTasksByStart result
	reachBuf       []int              // reaches BFS queue
	swBuf          []int              // software-task lists (phases 4 and 6)
	procEndBuf     []int64            // per-processor end times (phase 6)
	procLastBuf    []int              // per-processor last task (phase 6)
	rtBuf          []reconfTask       // reconfiguration task backing store
	rtPtrBuf       []*reconfTask      // reconfiguration task pointers
	rtCritBuf      []*reconfTask      // critical partition (phase 7)
	rtNonBuf       []*reconfTask      // non-critical partition (phase 7)
	rtOrderBuf     []*reconfTask      // repair-pass ordering buffer
	chanBuf        channelSet         // controller timelines, reused
	regionResBuf   []resources.Vector // per-region requirement vectors
}

// regionState is a reconfigurable region under construction.
type regionState struct {
	id     int
	res    resources.Vector
	bits   int64
	reconf int64
	tasks  []int

	// Warm-start fields (zero for regions opened by this run): a warm
	// region pre-exists the run, is busy until availFrom, holds module
	// loaded at that instant, and may pin a task whose bitstream a
	// committed reconfiguration already loads.
	warm       bool
	availFrom  int64
	loaded     string
	pinned     int
	pinnedImpl int
}

// newState initialises a fresh working state for one scheduling run. Callers
// that run the pipeline repeatedly (shrink retries, PA-R iterations) should
// construct the state once and reset it between runs.
func newState(g *taskgraph.Graph, a *arch.Architecture, maxRes resources.Vector) *state {
	s := &state{}
	s.reset(g, a, maxRes)
	return s
}

// reset (re)initialises the state for a run on the given instance, reusing
// every buffer the previous run left behind. It is equivalent to a fresh
// newState: all derived data — sequencing edges, regions, timings, releases
// — is cleared, so runs after a reset are bit-identical to first runs.
func (s *state) reset(g *taskgraph.Graph, a *arch.Architecture, maxRes resources.Vector) {
	n := g.N()
	s.g, s.a, s.maxRes = g, a, maxRes
	s.weights = resources.WeightsFor(a.MaxRes)
	s.strict = false
	s.usedRes = resources.Vector{}
	s.makespan = 0
	s.warm = nil

	if cap(s.impl) < n {
		s.impl = make([]int, n)
		s.dur = make([]int64, n)
		s.regionOf = make([]int, n)
		s.procOf = make([]int, n)
		s.release = make([]int64, n)
		s.succ = make([][]int, n)
		s.pred = make([][]int, n)
	}
	s.impl = s.impl[:n]
	s.dur = s.dur[:n]
	s.regionOf = s.regionOf[:n]
	s.procOf = s.procOf[:n]
	s.release = s.release[:n]
	s.succ = s.succ[:n]
	s.pred = s.pred[:n]
	if s.edgeSet == nil {
		s.edgeSet = make(map[[2]int]bool, n*2)
	} else {
		clear(s.edgeSet)
	}
	s.regions = s.regions[:0]

	for k := range s.cellSize {
		s.cellSize[k] = 1
		if a.Fabric != nil && a.Fabric.UnitsPerCell[k] > 0 {
			s.cellSize[k] = a.Fabric.UnitsPerCell[k]
		}
	}
	for t := 0; t < n; t++ {
		s.impl[t] = 0
		s.dur[t] = 0
		s.release[t] = 0
		s.succ[t] = append(s.succ[t][:0], g.Succ(t)...)
		s.pred[t] = append(s.pred[t][:0], g.Pred(t)...)
		s.regionOf[t] = -1
		s.procOf[t] = -1
		for _, v := range g.Succ(t) {
			s.edgeSet[[2]int{t, v}] = true
		}
	}
}

// footprint estimates the device capacity a region of the given requirement
// will actually consume once placed: the content of its minimal-area
// placement rectangle on the fabric (which includes any columns of other
// kinds the rectangle spans). Without a fabric it falls back to rounding up
// to whole cells per kind. Keeping the accounting aligned with what the
// floorplanner can place makes the §V-H shrink-and-restart loop rare.
func (s *state) footprint(res resources.Vector) resources.Vector {
	if s.a.Fabric != nil {
		if fp, ok := s.footprints[res]; ok {
			return fp
		}
		fp := floorplan.PlacementFootprint(s.a.Fabric, res)
		if s.footprints == nil {
			s.footprints = make(map[resources.Vector]resources.Vector)
		}
		s.footprints[res] = fp
		return fp
	}
	for k, c := range res {
		cell := s.cellSize[k]
		res[k] = (c + cell - 1) / cell * cell
	}
	return res
}

// addEdge inserts a sequencing edge into the combined graph (idempotent).
func (s *state) addEdge(from, to int) {
	if from == to || s.edgeSet[[2]int{from, to}] {
		return
	}
	s.edgeSet[[2]int{from, to}] = true
	s.succ[from] = append(s.succ[from], to)
	s.pred[to] = append(s.pred[to], from)
}

// reaches reports whether task to is reachable from task from in the
// combined graph (application edges plus inserted sequencing edges). Used to
// reject region placements that would contradict a warm region's pin-first
// contract: a task that precedes the pinned task can never follow it.
func (s *state) reaches(from, to int) bool {
	if from == to {
		return true
	}
	seen := make([]bool, s.g.N())
	seen[from] = true
	queue := append(s.reachBuf[:0], from)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range s.succ[v] {
			if w == to {
				s.reachBuf = queue[:0]
				return true
			}
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	s.reachBuf = queue[:0]
	return false
}

// hostablePinned reports whether warm region r may host task t at all: a
// pinned region must run its pin first, so any task ordered before the pin
// by the combined graph is rejected outright (timing floors cannot save it —
// delaying t to the pin's end would delay the pin itself through the same
// precedence path).
func (s *state) hostablePinned(r *regionState, t int) bool {
	return !r.warm || r.pinned < 0 || r.pinned == t || !s.reaches(t, r.pinned)
}

// setImpl selects implementation i for task t and refreshes its duration.
func (s *state) setImpl(t, i int) {
	s.impl[t] = i
	s.dur[t] = s.g.Tasks[t].Impls[i].Time
}

// selectedImpl returns the implementation currently selected for t.
func (s *state) selectedImpl(t int) taskgraph.Implementation {
	return s.g.Tasks[t].Impls[s.impl[t]]
}

// isHW reports whether the selected implementation of t is hardware.
func (s *state) isHW(t int) bool { return s.selectedImpl(t).Kind == taskgraph.HW }

// retime recomputes the time windows over the combined graph: est (which is
// also the start time of the schedule under construction — §V-E sets
// T_START = T_MIN) via a forward pass honouring releases, lft via the
// backward pass against the resulting makespan. The timing arrays alias the
// reusable cpm workspace and are overwritten in place on every call.
func (s *state) retime() error {
	// Sequencing edges communicate for free; application edges carry their
	// declared communication time.
	est, lft, makespan, err := s.cpmWS.ComputeEdges(s.g.N(), s.succ, s.pred, s.dur, s.release, -1, s.g.EdgeComm)
	if err != nil {
		return fmt.Errorf("sched: %w", err)
	}
	s.est, s.lft, s.makespan = est, lft, makespan
	return nil
}

// critical reports whether t currently has zero slack.
func (s *state) critical(t int) bool { return s.lft[t]-s.est[t]-s.dur[t] == 0 }

// start and end of task t under the current timing.
func (s *state) start(t int) int64 { return s.est[t] }
func (s *state) end(t int) int64   { return s.est[t] + s.dur[t] }

// window returns [T_MIN, T_MAX] of task t.
func (s *state) window(t int) (int64, int64) { return s.est[t], s.lft[t] }

// delay imposes an earliest start on task t and re-times the schedule.
func (s *state) delay(t int, notBefore int64) error {
	if notBefore <= s.release[t] {
		return nil
	}
	s.release[t] = notBefore
	return s.retime()
}

// newRegion opens a reconfigurable region sized for requirement res,
// recycling a pooled regionState (and its task slice) when one is free.
func (s *state) newRegion(res resources.Vector) *regionState {
	id := len(s.regions)
	var r *regionState
	if id < len(s.regionPool) {
		r = s.regionPool[id]
		r.tasks = r.tasks[:0]
	} else {
		r = &regionState{}
		s.regionPool = append(s.regionPool, r)
	}
	r.id = id
	r.res = res
	r.bits = s.a.BitstreamBits(res)
	r.reconf = s.a.ReconfTime(res)
	// Pool recycling: a previous run may have left warm fields behind.
	r.warm, r.availFrom, r.loaded, r.pinned, r.pinnedImpl = false, 0, "", -1, 0
	s.regions = append(s.regions, r)
	s.usedRes = s.usedRes.Add(s.footprint(res))
	return r
}

// assignToRegion places task t in region r and inserts the sequencing edges
// that keep the region's tasks totally ordered by their current windows
// (§V-C: "new dependencies are inserted into the taskgraph to guarantee the
// ordering of tasks inside each reconfigurable region").
func (s *state) assignToRegion(t int, r *regionState) error {
	// Find t's neighbours among the region's tasks using the same slot
	// semantics as windowsCompatible: a task whose fixed slot ends before
	// t's window precedes t, anything else (compatibility guarantees its
	// slot starts after t's window) follows t.
	prev, next := -1, -1
	for _, t2 := range r.tasks {
		if s.end(t2) <= s.est[t] {
			if prev < 0 || s.end(t2) > s.end(prev) {
				prev = t2
			}
		} else {
			if next < 0 || s.est[t2] < s.est[next] {
				next = t2
			}
		}
	}
	if prev >= 0 {
		s.addEdge(prev, t)
	}
	if next >= 0 {
		s.addEdge(t, next)
	}
	r.tasks = append(r.tasks, t)
	s.regionOf[t] = r.id
	return s.retime()
}

// regionTasksByStart returns region r's tasks sorted by current start time.
// The result aliases a shared scratch buffer and is valid until the next
// call.
func (s *state) regionTasksByStart(r *regionState) []int {
	out := append(s.regionOrderBuf[:0], r.tasks...)
	s.regionOrderBuf = out
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (s.est[out[j]] < s.est[out[j-1]] ||
			(s.est[out[j]] == s.est[out[j-1]] && out[j] < out[j-1])); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// fitsDevice reports whether an additional requirement can be accounted on
// the (possibly shrunk) device, in fabric-cell granularity.
func (s *state) fitsDevice(extra resources.Vector) bool {
	return s.usedRes.Add(s.footprint(extra)).Fits(s.maxRes)
}
