package sched

import (
	"reflect"
	"testing"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/resources"
	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

// mustWarmSchedule runs PA with an initial platform state and validates the
// result against it.
func mustWarmSchedule(t *testing.T, g *taskgraph.Graph, a *arch.Architecture, ps *schedule.PlatformState, opts Options) *schedule.Schedule {
	t.Helper()
	opts.Initial = ps
	opts.SkipFloorplan = true
	sch, _, err := Schedule(g, a, opts)
	if err != nil {
		t.Fatalf("warm Schedule: %v", err)
	}
	if errs := schedule.CheckAgainst(ps, sch); len(errs) > 0 {
		var buf []byte
		for _, e := range errs {
			buf = append(buf, (e.Error() + "\n")...)
		}
		t.Fatalf("invalid warm schedule:\n%s", buf)
	}
	return sch
}

// TestEmptyInitialIdenticalPA pins the offline-unchanged contract: a nil and
// an explicitly empty initial state produce DeepEqual schedules.
func TestEmptyInitialIdenticalPA(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 40, Seed: 11})
	a := arch.ZedBoard()
	cold, _, err := Schedule(g, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	empty, _, err := Schedule(g, a, Options{Initial: &schedule.PlatformState{}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, empty) {
		t.Errorf("empty initial state changed the schedule:\ncold:  %s\nempty: %s", cold.Summary(), empty.Summary())
	}
	// Zero-valued floors are an empty state too.
	zeros, _, err := Schedule(g, a, Options{Initial: &schedule.PlatformState{
		ProcAvail: make([]int64, a.Processors),
		Release:   make([]int64, g.N()),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, zeros) {
		t.Error("all-zero initial state changed the schedule")
	}
}

// TestEmptyInitialIdenticalPAR extends the contract to the randomized
// search, sequential and parallel.
func TestEmptyInitialIdenticalPAR(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 30, Seed: 3})
	a := arch.ZedBoard()
	for _, workers := range []int{1, 3} {
		opts := RandomOptions{MaxIterations: 8, Seed: 5, Workers: workers}
		cold, _, err := RSchedule(g, a, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Initial = &schedule.PlatformState{}
		empty, _, err := RSchedule(g, a, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold, empty) {
			t.Errorf("workers=%d: empty initial state changed the PA-R result", workers)
		}
	}
}

// TestWarmReleaseFloors verifies ps.Release delays tasks with no other
// constraint.
func TestWarmReleaseFloors(t *testing.T) {
	g := taskgraph.New("rel")
	g.AddTask("t0", sw("s0", 50))
	g.AddTask("t1", sw("s1", 50))
	ps := &schedule.PlatformState{Release: []int64{120, 0}}
	sch := mustWarmSchedule(t, g, arch.ZedBoard(), ps, Options{})
	if sch.Tasks[0].Start < 120 {
		t.Errorf("t0 starts at %d, release floor is 120", sch.Tasks[0].Start)
	}
	if sch.Tasks[1].Start != 0 {
		t.Errorf("t1 starts at %d, want 0 (unconstrained)", sch.Tasks[1].Start)
	}
}

// TestWarmProcessorFloors verifies busy processors delay first tail tasks.
func TestWarmProcessorFloors(t *testing.T) {
	g := taskgraph.New("proc")
	g.AddTask("t0", sw("s0", 50))
	a := arch.ZedBoard()
	floors := make([]int64, a.Processors)
	for p := range floors {
		floors[p] = 200
	}
	ps := &schedule.PlatformState{ProcAvail: floors}
	sch := mustWarmSchedule(t, g, a, ps, Options{})
	if sch.Tasks[0].Start < 200 {
		t.Errorf("t0 starts at %d on a processor busy until 200", sch.Tasks[0].Start)
	}
}

// TestWarmPinnedTask verifies a pinned task executes first in its warm
// region with the committed implementation, starting once the in-flight
// reconfiguration completes, with no new reconfiguration.
func TestWarmPinnedTask(t *testing.T) {
	g := taskgraph.New("pin")
	g.AddTask("t0", sw("s0", 1000), hw("h0", 100, 500, 0, 0))
	ps := &schedule.PlatformState{
		Regions: []schedule.WarmRegion{{
			Res: resources.Vec(500, 0, 0), Avail: 70, Loaded: "h0",
			Pinned: 0, PinnedImpl: 1,
		}},
	}
	sch := mustWarmSchedule(t, g, arch.ZedBoard(), ps, Options{})
	a0 := sch.Tasks[0]
	if a0.Target.Kind != schedule.OnRegion || a0.Target.Index != 0 {
		t.Fatalf("pinned task not in warm region 0: %+v", a0)
	}
	if a0.Impl != 1 {
		t.Errorf("pinned task uses impl %d, committed load was 1", a0.Impl)
	}
	if a0.Start != 70 {
		t.Errorf("pinned task starts at %d, want 70 (end of in-flight reconfiguration)", a0.Start)
	}
	if len(sch.Reconfs) != 0 {
		t.Errorf("pinned task needs no new reconfiguration, got %v", sch.Reconfs)
	}
}

// TestWarmPinForcesImpl verifies the pin overrides phase 1 even when the
// cost model would pick differently (here: software would be faster).
func TestWarmPinForcesImpl(t *testing.T) {
	g := taskgraph.New("pinforce")
	g.AddTask("t0", sw("s0", 10), hw("h0", 500, 500, 0, 0))
	ps := &schedule.PlatformState{
		Regions: []schedule.WarmRegion{{
			Res: resources.Vec(500, 0, 0), Avail: 0, Loaded: "h0",
			Pinned: 0, PinnedImpl: 1,
		}},
	}
	sch := mustWarmSchedule(t, g, arch.ZedBoard(), ps, Options{})
	if sch.Tasks[0].Impl != 1 || sch.Tasks[0].Target.Kind != schedule.OnRegion {
		t.Errorf("pin not enforced: %+v", sch.Tasks[0])
	}
}

// TestWarmBoundaryReconf drives a tail task into a warm region holding a
// stale module on a device too small for a second region: the plan must
// carry a boundary reconfiguration (InTask = -1) after the region's floor.
func TestWarmBoundaryReconf(t *testing.T) {
	g := taskgraph.New("boundary")
	// Slack comes from a slow software sibling chain; t1 is non-critical HW.
	g.AddTask("t0", sw("s0", 4000))
	g.AddTask("t1", sw("s1", 3000), hw("h1", 100, 500, 0, 0))
	a := arch.ZedBoard()
	a.MaxRes = resources.Vec(600, 0, 0) // fits the warm region, not a second one
	a.Fabric = nil
	ps := &schedule.PlatformState{
		Regions: []schedule.WarmRegion{{Res: resources.Vec(500, 0, 0), Avail: 40, Loaded: "other", Pinned: -1}},
	}
	sch := mustWarmSchedule(t, g, a, ps, Options{})
	if sch.Tasks[1].Target.Kind != schedule.OnRegion {
		t.Skipf("t1 fell back to software (%+v); boundary path not exercised", sch.Tasks[1])
	}
	if len(sch.Reconfs) != 1 || sch.Reconfs[0].InTask != -1 {
		t.Fatalf("expected one boundary reconfiguration, got %v", sch.Reconfs)
	}
	rc := sch.Reconfs[0]
	if rc.Start < 40 {
		t.Errorf("boundary reconfiguration starts at %d, region busy until 40", rc.Start)
	}
	if rc.OutTask != 1 || rc.End > sch.Tasks[1].Start {
		t.Errorf("boundary reconfiguration %+v inconsistent with task slot %+v", rc, sch.Tasks[1])
	}
}

// TestWarmControllerFloor verifies an in-flight committed reconfiguration
// occupies its controller: new reconfigurations wait for the floor.
func TestWarmControllerFloor(t *testing.T) {
	g := taskgraph.New("icap")
	g.AddTask("t0", sw("s0", 4000))
	g.AddTask("t1", sw("s1", 3000), hw("h1", 100, 500, 0, 0))
	a := arch.ZedBoard()
	a.MaxRes = resources.Vec(600, 0, 0)
	a.Fabric = nil
	ps := &schedule.PlatformState{
		Regions:     []schedule.WarmRegion{{Res: resources.Vec(500, 0, 0), Avail: 0, Loaded: "other", Pinned: -1}},
		ReconfAvail: []int64{500},
	}
	sch := mustWarmSchedule(t, g, a, ps, Options{})
	for _, rc := range sch.Reconfs {
		if rc.Start < 500 {
			t.Errorf("reconfiguration %+v starts before the controller floor 500", rc)
		}
	}
}

// TestSoftwareOnlyFromWarm verifies the bottom rung honours floors and pins.
func TestSoftwareOnlyFromWarm(t *testing.T) {
	g := taskgraph.New("swonly")
	g.AddTask("t0", sw("s0", 50), hw("h0", 100, 500, 0, 0))
	g.AddTask("t1", sw("s1", 50))
	mustEdge(t, g, 0, 1)
	a := arch.ZedBoard()
	ps := &schedule.PlatformState{
		Regions: []schedule.WarmRegion{{
			Res: resources.Vec(500, 0, 0), Avail: 30, Loaded: "h0",
			Pinned: 0, PinnedImpl: 1,
		}},
		ProcAvail: make([]int64, a.Processors),
		Release:   []int64{0, 10},
	}
	for p := range ps.ProcAvail {
		ps.ProcAvail[p] = 25
	}
	sch, err := SoftwareOnlyScheduleFrom(g, a, ps)
	if err != nil {
		t.Fatal(err)
	}
	if errs := schedule.CheckAgainst(ps, sch); len(errs) > 0 {
		t.Fatalf("invalid SW-only warm schedule: %v", errs)
	}
	if sch.Tasks[0].Target.Kind != schedule.OnRegion || sch.Tasks[0].Start != 30 {
		t.Errorf("pinned task: %+v, want region start 30", sch.Tasks[0])
	}
	if sch.Tasks[1].Target.Kind != schedule.OnProcessor || sch.Tasks[1].Start < 130 {
		t.Errorf("t1: %+v, want processor start ≥ 130 (after pinned end)", sch.Tasks[1])
	}

	// Identity: the nil-state wrapper matches the historical behaviour.
	cold1, err := SoftwareOnlySchedule(g, a)
	if err != nil {
		t.Fatal(err)
	}
	cold2, err := SoftwareOnlyScheduleFrom(g, a, &schedule.PlatformState{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold1, cold2) {
		t.Error("empty state changed the SW-only schedule")
	}
}

// TestRobustWarmState verifies the ladder threads the initial state down to
// whichever rung fires.
func TestRobustWarmState(t *testing.T) {
	g := taskgraph.New("robustwarm")
	g.AddTask("t0", sw("s0", 50))
	a := arch.ZedBoard()
	floors := make([]int64, a.Processors)
	for p := range floors {
		floors[p] = 90
	}
	ps := &schedule.PlatformState{ProcAvail: floors}
	res, err := Robust(g, a, RobustOptions{Initial: ps})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Tasks[0].Start < 90 {
		t.Errorf("robust result starts at %d, processor floor is 90", res.Schedule.Tasks[0].Start)
	}
	if errs := schedule.CheckAgainst(ps, res.Schedule); len(errs) > 0 {
		t.Fatalf("robust warm schedule invalid: %v", errs)
	}
}
