package sched

import (
	"testing"

	"resched/internal/arch"
	"resched/internal/resources"
	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

func TestGapSearch(t *testing.T) {
	mk := func(start, end int64) *reconfTask { return &reconfTask{start: start, end: end} }
	timeline := []*reconfTask{mk(10, 20), mk(30, 40)}
	cases := []struct {
		tmin, dur, want int64
	}{
		{0, 5, 0},     // fits before everything
		{0, 10, 0},    // exactly the first gap
		{0, 11, 40},   // too long for both gaps (head 10, middle 10)
		{0, 15, 40},   // only after the last interval
		{12, 5, 20},   // tmin inside an interval
		{25, 5, 25},   // fits in the middle gap
		{25, 6, 40},   // middle gap too small from 25
		{100, 7, 100}, // far beyond the timeline
	}
	for _, c := range cases {
		if got := gapSearch(timeline, c.tmin, c.dur); got != c.want {
			t.Errorf("gapSearch(tmin=%d dur=%d) = %d, want %d", c.tmin, c.dur, got, c.want)
		}
	}
	if got := gapSearch(nil, 7, 3); got != 7 {
		t.Errorf("gapSearch on empty = %d", got)
	}
}

func TestChannelSet(t *testing.T) {
	cs := newChannelSet(2)
	if c, st := cs.earliest(5, 10); st != 5 || c < 0 || c > 1 {
		t.Errorf("earliest on empty = (%d, %d)", c, st)
	}
	rt1 := &reconfTask{start: 0, end: 100}
	cs.insert(0, rt1)
	// Channel 1 is free: the earliest placement avoids queueing.
	if c, st := cs.earliest(0, 50); c != 1 || st != 0 {
		t.Errorf("earliest = (%d, %d), want (1, 0)", c, st)
	}
	rt2 := &reconfTask{start: 0, end: 80}
	cs.insert(1, rt2)
	// Both busy: the earliest feasible start is the lesser end.
	if _, st := cs.earliest(0, 50); st != 80 {
		t.Errorf("earliest with both busy = %d, want 80", st)
	}
	if c, e := cs.minLastEndChannel(); c != 1 || e != 80 {
		t.Errorf("minLastEndChannel = (%d, %d), want (1, 80)", c, e)
	}
	if cs.lastEnd(0) != 100 {
		t.Errorf("lastEnd(0) = %d", cs.lastEnd(0))
	}
}

// TestCriticalReconfsScheduledFirst checks the §V-G priority: on a schedule
// with one critical and one slack-rich reconfiguration contending for the
// ICAP, the critical one must not be delayed by the other.
func TestCriticalReconfsScheduledFirst(t *testing.T) {
	// Region A hosts the critical chain c0 → c1 (equal windows, zero
	// slack); region B hosts a non-critical second task with generous
	// slack thanks to a long parallel software task.
	a := &arch.Architecture{
		Name: "two-regions", Processors: 2, RecFreq: 3200, Bits: resources.DefaultBits,
		MaxRes: resources.Vec(1300, 0, 0),
	}
	g := taskgraph.New("prio")
	g.AddTask("c0", sw("c0_sw", 90000), hw("c0_hw", 1000, 600, 0, 0))
	g.AddTask("mid", taskgraph.Implementation{Name: "mid_sw", Kind: taskgraph.SW, Time: 3000})
	g.AddTask("c1", sw("c1_sw", 90000), hw("c1_hw", 1000, 600, 0, 0))
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	g.AddTask("n0", sw("n0_sw", 90000), hw("n0_hw", 500, 600, 0, 0))
	g.AddTask("n1", sw("n1_sw", 90000), hw("n1_hw", 500, 600, 0, 0))
	mustEdge(t, g, 3, 4)

	sch, _ := mustSchedule(t, g, a, Options{SkipFloorplan: true})
	if len(sch.Reconfs) == 0 {
		t.Skip("instance did not produce reconfigurations")
	}
	// Whatever the placements, the checker must hold and the makespan must
	// stay at the critical chain's length (reconfigurations masked by the
	// software middle task or the slack).
	if errs := schedule.Check(sch); len(errs) > 0 {
		t.Fatalf("invalid: %v", errs[0])
	}
	if sch.Makespan != 5000 {
		t.Logf("makespan = %d (critical chain is 5000); reconfigurations added %d",
			sch.Makespan, sch.Makespan-5000)
	}
}

// TestRepairConvergesUnderStress floods the repair pass with many
// interdependent reconfigurations (tiny device, long chains) and checks it
// terminates with a valid schedule.
func TestRepairConvergesUnderStress(t *testing.T) {
	a := &arch.Architecture{
		Name: "stress", Processors: 2, RecFreq: 3200, Bits: resources.DefaultBits,
		MaxRes: resources.Vec(1400, 10, 10),
	}
	g := taskgraph.New("stress")
	// Two interleaved chains sharing two regions, with SW gaps creating
	// window slack that region sharing exploits.
	prev := -1
	for i := 0; i < 12; i++ {
		var task *taskgraph.Task
		if i%3 == 2 {
			task = g.AddTask("gap", sw("gap_sw", 2500))
		} else {
			task = g.AddTask("hw", sw("hw_sw", 30000), hw("hw_hw", 400, 650, 0, 0))
		}
		if prev >= 0 {
			mustEdge(t, g, prev, task.ID)
		}
		prev = task.ID
	}
	sch, _ := mustSchedule(t, g, a, Options{SkipFloorplan: true})
	if errs := schedule.Check(sch); len(errs) > 0 {
		t.Fatalf("invalid: %v", errs[0])
	}
}
