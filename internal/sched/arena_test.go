package sched

import (
	"reflect"
	"testing"

	"resched/internal/arch"
	"resched/internal/benchgen"
)

// TestArenaReuseIsTransparent proves the caller-owned arena is purely an
// allocation concern: solving the same instance repeatedly on one Arena
// yields schedules DeepEqual to fresh-arena runs, so a serving worker can
// keep one arena for its whole lifetime without cross-request bleed.
func TestArenaReuseIsTransparent(t *testing.T) {
	a := arch.ZedBoard()
	arena := NewArena()
	for _, seed := range []int64{11, 12, 13} {
		g := genGraph(t, benchgen.Config{Tasks: 30, Seed: seed})
		fresh, _, err := Schedule(g, a, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Two back-to-back runs on the shared arena: the second sees the
		// first's dirty buffers, which reset must fully neutralise.
		for i := 0; i < 2; i++ {
			sch, _, err := Schedule(g, a, Options{Arena: arena})
			if err != nil {
				t.Fatalf("seed %d run %d on shared arena: %v", seed, i, err)
			}
			if !reflect.DeepEqual(sch, fresh) {
				t.Fatalf("seed %d run %d on shared arena diverged from fresh-arena run", seed, i)
			}
		}
	}
}
