package sched

// Arena is an opaque, reusable scheduling scratch space for repeat callers
// that sit outside this package: a serving worker that solves thousands of
// requests over its lifetime hands the same Arena to every run and gets the
// PR-4 allocation diet (buffers re-sliced, maps cleared, no per-request
// arena rebuild) across requests, not just across the shrink retries and
// PA-R iterations inside one run.
//
// An Arena wraps the same *state the internal pipeline uses, so the
// arenaescape analyzer's rules apply unchanged: nothing read out of the
// arena may outlive the run that produced it — Schedule already copies
// everything it returns. An Arena must only ever be used by one goroutine
// at a time; give each worker of a pool its own (the parallel PA-R search
// does exactly this internally).
type Arena struct {
	s state
}

// NewArena returns an empty arena. The first run populates the buffers;
// later runs on the same arena reuse them.
func NewArena() *Arena { return &Arena{} }
