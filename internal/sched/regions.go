package sched

import (
	"math/rand"
	"sort"
)

// hwOrder produces the processing order for the regions-definition phase:
// critical tasks first, then non-critical tasks, each class sorted by
// decreasing efficiency index of its selected implementation (§V-C). When
// rng is non-nil the non-critical class is randomly permuted instead — the
// relaxation that defines the PA-R variant (§VI). The result aliases a
// scratch buffer valid until the next pipeline run.
func (s *state) hwOrder(isCritical []bool, rng *rand.Rand) []int {
	order := s.orderBuf[:0]
	for t := 0; t < s.g.N(); t++ {
		if s.isHW(t) && isCritical[t] {
			order = append(order, t)
		}
	}
	nCrit := len(order)
	for t := 0; t < s.g.N(); t++ {
		if s.isHW(t) && !isCritical[t] {
			order = append(order, t)
		}
	}
	s.orderBuf = order
	crit, non := order[:nCrit], order[nCrit:]
	byEff := func(ts []int) {
		sort.SliceStable(ts, func(a, b int) bool {
			ea := s.efficiency(s.selectedImpl(ts[a]))
			eb := s.efficiency(s.selectedImpl(ts[b]))
			if ea > eb {
				return true
			}
			if eb > ea {
				return false
			}
			return ts[a] < ts[b]
		})
	}
	byEff(crit)
	if rng != nil {
		rng.Shuffle(len(non), func(i, j int) { non[i], non[j] = non[j], non[i] })
	} else {
		byEff(non)
	}
	return order
}

// insertionStart looks for a start time for task t inside region r's busy
// timeline: the earliest instant within t's window [T_MIN, T_MAX − T_EXE]
// such that t's execution fits between the fixed slots of the tasks already
// assigned, leaving room for a reconfiguration before t and before the
// following task when needGap is set. It returns -1 when no such instant
// exists. A positive return larger than T_MIN consumes slack but never
// extends the schedule beyond the bound: by default T_MAX (no makespan
// growth); callers may pass a larger horizon — the software-balancing phase
// uses the task's pre-switch window, which its move can only improve on.
func (s *state) insertionStart(r *regionState, t int, dur int64, needGap bool, horizon int64) int64 {
	bound := s.lft[t]
	if horizon > bound {
		bound = horizon
	}
	var gap int64
	if needGap {
		gap = r.reconf
	}
	slots := s.regionTasksByStart(r)
	cur := s.est[t]
	if fl := s.regionFloor(r, t); fl > cur {
		// Warm region: busy until the prefix releases it (plus the boundary
		// reconfiguration when a new module must be loaded first).
		cur = fl
	}
	for i, t2 := range slots {
		s2, e2 := s.est[t2], s.end(t2)
		if e2 <= cur {
			// t2 finishes before the candidate start; t still needs its
			// reconfiguration after t2 (t2 is the region's previous
			// occupant at this position) — except when t2 would not be
			// the immediate predecessor, which a later slot supersedes.
			if cur < e2+gap {
				cur = e2 + gap
			}
			continue
		}
		// t2's slot lies ahead: does t fit before it (plus the gap needed
		// to reconfigure t2 after t)?
		if i == 0 && cur == s.est[t] {
			// t would become the region's first occupant: no
			// reconfiguration before t is needed, only before t2.
			if cur+dur+gap <= s2 && cur+dur <= bound {
				return cur
			}
		} else if cur+dur+gap <= s2 && cur+dur <= bound {
			return cur
		}
		// Skip past t2.
		if cur < e2+gap {
			cur = e2 + gap
		}
	}
	if cur+dur <= bound {
		return cur
	}
	return -1
}

// windowsCompatible is the literal §V-C compatibility test used by the
// StrictWindows ablation mode: task t's window must not collide with the
// fixed slots of the tasks already in region r (assigned tasks occupy
// [T_MIN, T_MIN + T_EXE), §V-E), with room for the reconfigurations when
// needGap is set.
func (s *state) windowsCompatible(r *regionState, t int, needGap bool) bool {
	// Warm region: delay-free sharing places t at T_MIN, which must clear
	// the floor the committed prefix imposes.
	if s.est[t] < s.regionFloor(r, t) {
		return false
	}
	for _, t2 := range r.tasks {
		// Tasks already assigned occupy a fixed slot [T_START, T_END) =
		// [T_MIN, T_MIN + T_EXE) (§V-E fixes T_START = T_MIN), so the
		// region is busy during the slot, not during the whole window —
		// comparing against the slot admits far more reuse whenever t2
		// carries slack.
		s2, e2 := s.est[t2], s.end(t2)
		switch {
		case e2 <= s.est[t]: // t2's slot entirely before t's window
			// The reconfiguration loading t must fit between t2's end and
			// t's latest start (for a critical t the latest start equals
			// est[t], which is exactly the paper's condition; slack of a
			// non-critical t absorbs the reconfiguration).
			if needGap && e2+r.reconf > s.lft[t]-s.dur[t] {
				return false
			}
		case s.lft[t] <= s2: // t's window entirely before t2's slot
			// Symmetrically, inserting t in front of t2 creates a new
			// reconfiguration that must complete before t2's fixed start.
			if needGap && s.lft[t]+r.reconf > s2 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// defineRegions runs phase 3 (§V-C): walk the hardware tasks in the given
// order and either place each into a compatible existing region, open a new
// region for it, or fall back to its fastest software implementation.
// isCritical is the categorisation captured at critical-path-extraction
// time (§V-B), which also selects which of the two assignment procedures
// applies.
func (s *state) defineRegions(order []int, isCritical []bool) error {
	for _, t := range order {
		if !s.isHW(t) {
			continue // switched to software by an earlier fallback
		}
		if s.regionOf[t] >= 0 {
			continue // pinned into a warm region before the walk
		}
		im := s.selectedImpl(t)
		if isCritical[t] {
			// Critical procedure: reuse a region the task slides into
			// without delay (a critical task has no slack to consume),
			// else open a new region, else fall back to software.
			best, start := s.pickRegion(t, true, false)
			switch {
			case best != nil:
				if err := s.placeInRegion(t, best, start); err != nil {
					return err
				}
			case s.fitsDevice(im.Res):
				if err := s.assignToRegion(t, s.newRegion(im.Res)); err != nil {
					return err
				}
			default:
				if err := s.fallbackToSW(t); err != nil {
					return err
				}
			}
		} else {
			// Non-critical procedure: maximise FPGA utilisation by opening
			// a new region when capacity allows; otherwise share an
			// existing region, preferring positions that keep the task at
			// T_MIN and consuming window slack only as the last step
			// before the expensive software fallback.
			switch {
			case s.fitsDevice(im.Res):
				if err := s.assignToRegion(t, s.newRegion(im.Res)); err != nil {
					return err
				}
			default:
				best, start := s.pickRegion(t, false, false)
				if best != nil {
					if err := s.placeInRegion(t, best, start); err != nil {
						return err
					}
				} else if err := s.fallbackToSW(t); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// pickRegion returns the compatible region with the lowest bitstream size
// (ties by ID) together with the start time task t would take there, or
// (nil, -1). With strict windows (the ablation mode) compatibility is the
// window-disjointness test of §V-C and the start stays T_MIN; by default
// the richer insertion test is used and the start may consume slack.
func (s *state) pickRegion(t int, needGap, allowDelay bool) (*regionState, int64) {
	im := s.selectedImpl(t)
	var best *regionState
	start := int64(-1)
	for _, r := range s.regions {
		if !im.Res.Fits(r.res) {
			continue
		}
		if !s.hostablePinned(r, t) {
			continue
		}
		var st int64
		if r.warm && !s.strict {
			// A warm region is busy until the committed prefix releases it,
			// so the delay-free test below would reject almost every task
			// (T_MIN typically precedes the floor). Use the slot-insertion
			// test instead: it starts at the floor and consumes window slack,
			// which never extends the makespan bound. Critical tasks have no
			// slack, so they still only land here when their window already
			// clears the floor — exactly the §V-C contract.
			st = s.insertionStart(r, t, s.dur[t], needGap, -1)
			if st < 0 {
				continue
			}
		} else if !allowDelay || s.strict {
			// Delay-free sharing uses the §V-C slot-disjointness test: the
			// task's whole window must clear the occupied slots, so later
			// delay propagation cannot make the region collide.
			if !s.windowsCompatible(r, t, needGap) {
				continue
			}
			st = s.est[t]
		} else {
			st = s.insertionStart(r, t, s.dur[t], needGap, -1)
			if st < 0 {
				continue
			}
		}
		if best == nil || r.bits < best.bits {
			best, start = r, st
		}
	}
	return best, start
}

// placeInRegion commits task t to region r starting no earlier than start,
// consuming slack via a release when the insertion point lies beyond T_MIN.
func (s *state) placeInRegion(t int, r *regionState, start int64) error {
	if start > s.est[t] {
		if err := s.delay(t, start); err != nil {
			return err
		}
	}
	return s.assignToRegion(t, r)
}

// fallbackToSW switches task t to its fastest software implementation and
// refreshes the time windows (§V-C step 3).
func (s *state) fallbackToSW(t int) error {
	sw := s.g.Tasks[t].FastestSW()
	if sw < 0 {
		// Validate guarantees a software implementation exists; defensive.
		return errNoSoftwareFallback(t)
	}
	s.setImpl(t, sw)
	return s.retime()
}
