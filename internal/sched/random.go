package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"resched/internal/arch"
	"resched/internal/budget"
	"resched/internal/faultinject"
	"resched/internal/floorplan"
	"resched/internal/obs"
	"resched/internal/resources"
	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

// RandomOptions tune the randomized scheduler PA-R (Algorithm 1 of §VI).
type RandomOptions struct {
	// TimeBudget is the wall-clock budget (timeToRun of Algorithm 1);
	// zero means no time limit (MaxIterations or Budget must then be set).
	// It is applied as a WithTimeout child of Budget, so the overall
	// budget's node cap and cancellation still govern the search.
	TimeBudget time.Duration
	// MaxIterations optionally caps the number of inner scheduling runs
	// (0 = unlimited). Benchmarks use it for deterministic workloads.
	MaxIterations int
	// Budget, when non-nil, bounds the whole search: deadline, shared node
	// cap and cancellation are honoured between iterations, at pipeline
	// phase boundaries and per node inside floorplan queries. When the
	// budget runs dry mid-search the incumbent (if any) is returned.
	Budget *budget.Budget
	// Faults, when armed, is forwarded to every floorplan query.
	Faults *faultinject.Set
	// Seed initialises the random generator; runs are reproducible.
	Seed int64
	// Workers sets the number of search goroutines. 0 defaults to
	// runtime.GOMAXPROCS(0); 1 runs the historical sequential search
	// unchanged (byte-identical schedules and RNG stream). With W > 1 the
	// global iteration sequence 0,1,2,… is strided across workers (worker w
	// owns iterations w, w+W, w+2W, …), each worker draws from its own
	// seeded generator, and the incumbents are reduced under a total order
	// — so the result is a pure function of (Seed, Workers, MaxIterations),
	// independent of goroutine interleaving.
	Workers int
	// ModuleReuse is forwarded to the inner scheduler.
	ModuleReuse bool
	// Floorplan configures the feasibility queries on improving solutions.
	Floorplan floorplan.Options
	// Trace, when non-nil, records the search span, one span per iteration
	// tagged with its outcome (improved / not-improving / infeasible) and
	// the search counters (package obs). Iteration spans stay at iteration
	// granularity — the inner pipeline phases are not traced, so the
	// overhead per iteration is two clock readings. A nil trace is a no-op
	// and recording never perturbs the seeded search.
	Trace *obs.Trace

	// Initial, when non-nil and non-empty, is the warm platform state every
	// inner run (and the deterministic fallback) schedules from — see
	// Options.Initial. The search remains a pure function of its inputs:
	// the state is a fixed input shared by all iterations and workers.
	Initial *schedule.PlatformState

	// InitialIncumbent, when non-nil, warm-starts the search: it becomes
	// the incumbent before iteration 0, so candidates must beat its
	// makespan before any floorplan query is spent, and it is returned
	// unchanged (the same pointer) when nothing does. The caller owns the
	// schedule and vouches that it is a valid, already-floorplanned
	// schedule of this exact instance — internal/schedcache pairs it by
	// instance digest; a schedule whose task count does not match the graph
	// is ignored. The search stays a pure function of (Seed, Workers,
	// MaxIterations, InitialIncumbent): the incumbent only raises the
	// improvement bar, it never changes which candidates are generated.
	InitialIncumbent *schedule.Schedule
}

// usableIncumbent reports whether a warm-start incumbent can seed the
// search for graph g: it must describe the same task set and carry a
// computed makespan.
func usableIncumbent(inc *schedule.Schedule, g *taskgraph.Graph) bool {
	return inc != nil && len(inc.Tasks) == g.N() && inc.Makespan > 0
}

// Virtual-capacity shrinking on floorplan-infeasible candidates: each
// discard multiplies the (worker-local) accounting capacity factor by
// capShrink, never below capFloor.
const capShrink, capFloor = 0.92, 0.40

// ImprovementPoint records when the incumbent improved, for the
// anytime-convergence analysis of Fig. 6.
type ImprovementPoint struct {
	// Elapsed is the wall-clock time since the start of the search.
	Elapsed time.Duration
	// Iteration is the inner run that produced the improvement.
	Iteration int
	// Makespan is the improved schedule execution time.
	Makespan int64
}

// RandomStats describes a PA-R search.
type RandomStats struct {
	// Iterations counts inner scheduling runs.
	Iterations int
	// FloorplanCalls counts feasibility queries (only improving schedules
	// are floorplanned, amortising the floorplanner cost — §VI).
	FloorplanCalls int
	// Discarded counts improving schedules rejected as floorplan-infeasible.
	Discarded int
	// CapacityFactor is the final virtual-capacity scaling: PA-R shrinks
	// its accounting capacity whenever a candidate is discarded as
	// unplaceable, steering later iterations toward floorplannable region
	// sets (the randomized counterpart of §V-H's restart-and-shrink). In a
	// parallel search each worker shrinks its own factor (decisions stay
	// worker-local so the search is interleaving-independent); this field
	// reports the minimum across workers, maintained as a shared
	// monotonically non-increasing value.
	CapacityFactor float64
	// History records every accepted improvement. After a parallel search
	// the per-worker histories are merged and sorted, so Elapsed is always
	// monotone non-decreasing across the slice; Makespan is strictly
	// decreasing per worker but only the final entry is the global best.
	History []ImprovementPoint
	// Elapsed is the total search time.
	Elapsed time.Duration
	// SchedulingTime is the time spent in the inner pipeline runs and
	// FloorplanTime the time spent in feasibility queries, the same split
	// Stats reports for PA (Table I).
	SchedulingTime time.Duration
	FloorplanTime  time.Duration
}

// RSchedule runs the randomized scheduler variant: the core heuristic is
// re-executed with random non-critical task orderings until the budget
// expires; an improving schedule is kept only if the floorplanner accepts
// its regions, and infeasible candidates are simply discarded (no virtual
// resource shrinking, unlike the deterministic variant).
func RSchedule(g *taskgraph.Graph, a *arch.Architecture, opts RandomOptions) (*schedule.Schedule, *RandomStats, error) {
	if opts.TimeBudget <= 0 && opts.MaxIterations <= 0 && opts.Budget == nil {
		return nil, nil, fmt.Errorf("sched: PA-R needs a time budget, an iteration cap or a budget")
	}
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	if err := a.Validate(); err != nil {
		return nil, nil, err
	}
	fabric, err := a.RequireFabric()
	if err != nil {
		return nil, nil, fmt.Errorf("sched: PA-R floorplans improving schedules: %w", err)
	}

	workers := opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		return nil, nil, fmt.Errorf("sched: PA-R workers must be positive, got %d", opts.Workers)
	}

	run := opts.Trace.Start("par.run", obs.Int("seed", opts.Seed), obs.Int("workers", int64(workers)))
	defer run.End()
	if opts.Floorplan.Trace == nil {
		opts.Floorplan.Trace = opts.Trace
	}
	if workers > 1 {
		return rscheduleParallel(g, a, fabric, opts, workers)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	start := time.Now()
	// The per-call TimeBudget nests inside the caller's overall budget: the
	// node cap is shared, the parent's cancellation is observed and the
	// deadline tightens. Retiring the child on return keeps the caller's
	// budget untouched (Cancel flows downward only) while making sure no
	// code reached after this call can still charge against the expired
	// TimeBudget window.
	bud := opts.Budget.WithTimeout(opts.TimeBudget)
	defer bud.Cancel()
	stats := &RandomStats{}
	var best *schedule.Schedule
	if usableIncumbent(opts.InitialIncumbent, g) {
		// Warm start: the cached schedule is the incumbent from iteration 0.
		// It enters no History record (it is not an improvement this search
		// found) and, if nothing beats it, is returned as-is.
		best = opts.InitialIncumbent
		opts.Trace.Count("par.incumbent_seeded", 1)
	}

	inner := Options{
		ModuleReuse:   opts.ModuleReuse,
		SkipFloorplan: true,
		Rand:          rng,
		Budget:        bud,
		Initial:       opts.Initial,
		scratch:       &state{},
	}
	capFactor := 1.0
	for {
		if opts.MaxIterations > 0 && stats.Iterations >= opts.MaxIterations {
			break
		}
		if bud.Check() != nil {
			break
		}
		maxRes := a.MaxRes
		for k := range maxRes {
			maxRes[k] = int(float64(maxRes[k]) * capFactor)
		}
		// The very first run uses the deterministic efficiency ordering —
		// the random search then only has to beat PA's own solution; every
		// later run draws a random non-critical order (Algorithm 1).
		runOpts := inner
		if stats.Iterations == 0 {
			runOpts.Rand = nil
		}
		it := opts.Trace.Start("par.iteration",
			obs.Int("iteration", int64(stats.Iterations)), obs.Int("worker", 0))
		// Run at least one iteration even with a tiny budget.
		innerBegin := time.Now()
		sch, regionRes, err := runPipeline(g, a, maxRes, runOpts)
		innerElapsed := time.Since(innerBegin)
		stats.SchedulingTime += innerElapsed
		opts.Trace.Observe("par.iteration_us", float64(innerElapsed.Nanoseconds())/1e3)
		if err != nil {
			if errors.Is(err, budget.ErrExhausted) {
				// The budget ran dry mid-pipeline: stop searching and fall
				// through to return the incumbent (or the fallback below).
				it.End(obs.Str("outcome", "budget"))
				break
			}
			it.End(obs.Str("outcome", "error"))
			return nil, nil, err
		}
		stats.Iterations++
		if best != nil && sch.Makespan >= best.Makespan {
			it.End(obs.Str("outcome", "not-improving"))
			continue
		}
		// Improving schedule: validate the floorplan before accepting.
		stats.FloorplanCalls++
		fpOpts := opts.Floorplan
		if fpOpts.Budget == nil {
			fpOpts.Budget = bud
		}
		if fpOpts.Faults == nil {
			fpOpts.Faults = opts.Faults
		}
		if fpOpts.MaxNodes == 0 {
			// Bound each feasibility query so a hard instance cannot eat
			// the whole search budget; an unproven verdict just shrinks the
			// virtual capacity and moves on.
			fpOpts.MaxNodes = 20000
		}
		fpBegin := time.Now()
		res, err := floorplan.Solve(fabric, regionRes, fpOpts)
		stats.FloorplanTime += time.Since(fpBegin)
		if err != nil {
			it.End(obs.Str("outcome", "error"))
			return nil, nil, err
		}
		if !res.Feasible {
			stats.Discarded++
			opts.Trace.Count("par.discarded", 1)
			if capFactor > capFloor {
				capFactor *= capShrink
			}
			it.End(obs.Str("outcome", "infeasible"))
			continue
		}
		sch.Algorithm = "PA-R"
		best = sch
		opts.Trace.Count("par.improvements", 1)
		// A sequential search may record the incumbent improvement inline:
		// iteration order is the event order, so the flight recorder stays
		// deterministic (the parallel search defers this to the merge).
		opts.Trace.Event("par.improved",
			obs.Int("iteration", int64(stats.Iterations)), obs.Int("makespan", sch.Makespan))
		stats.History = append(stats.History, ImprovementPoint{
			Elapsed:   time.Since(start),
			Iteration: stats.Iterations,
			Makespan:  sch.Makespan,
		})
		it.End(obs.Str("outcome", "improved"), obs.Int("makespan", sch.Makespan))
	}
	stats.Elapsed = time.Since(start)
	stats.CapacityFactor = capFactor
	opts.Trace.Count("par.iterations", int64(stats.Iterations))
	opts.Trace.Count("par.floorplan_calls", int64(stats.FloorplanCalls))
	opts.Trace.SetGauge("par.capacity_factor", capFactor)
	if best == nil {
		// Fall back to the deterministic scheduler (with shrinking) so a
		// TimeBudget too small to find a feasible randomized solution still
		// yields an answer. The caller's overall budget (not the expired
		// TimeBudget child) governs the fallback: a cancel or overall
		// deadline fails it with a typed budget error.
		sch, _, err := Schedule(g, a, Options{
			ModuleReuse: opts.ModuleReuse, Floorplan: opts.Floorplan,
			Initial: opts.Initial,
			Budget:  opts.Budget, Faults: opts.Faults, Trace: opts.Trace,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("sched: PA-R found no feasible schedule: %w", err)
		}
		sch.Algorithm = "PA-R"
		return sch, stats, nil
	}
	return best, stats, nil
}

// regionRequirements extracts the region resource vectors of a schedule,
// for callers that floorplan separately.
func regionRequirements(sch *schedule.Schedule) []resources.Vector {
	out := make([]resources.Vector, len(sch.Regions))
	for i, r := range sch.Regions {
		out[i] = r.Res
	}
	return out
}
