package sched

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/budget"
	"resched/internal/schedule"
)

// TestParallelDeterminism pins the worker pool's output contract: for a
// fixed (Seed, Workers, MaxIterations) the schedule is a pure function of
// the options — two runs must be deeply equal regardless of goroutine
// interleaving. Run under -race (make verify does) this also exercises the
// reducer and the shared capacity-factor aggregate for data races.
func TestParallelDeterminism(t *testing.T) {
	a := arch.ZedBoard()
	for _, tasks := range []int{20, 50} {
		g := genGraph(t, benchgen.Config{Tasks: tasks, Seed: int64(424242 + tasks)})
		for _, workers := range []int{1, 2, 4, 7} {
			opts := RandomOptions{MaxIterations: 30, Seed: 11, Workers: workers}
			s1, st1, err := RSchedule(g, a, opts)
			if err != nil {
				t.Fatalf("tasks=%d workers=%d run1: %v", tasks, workers, err)
			}
			s2, st2, err := RSchedule(g, a, opts)
			if err != nil {
				t.Fatalf("tasks=%d workers=%d run2: %v", tasks, workers, err)
			}
			if errs := schedule.Check(s1); len(errs) > 0 {
				t.Fatalf("tasks=%d workers=%d: invalid schedule: %v", tasks, workers, errs[0])
			}
			if !reflect.DeepEqual(s1, s2) {
				t.Errorf("tasks=%d workers=%d: schedules differ between runs (makespan %d vs %d)",
					tasks, workers, s1.Makespan, s2.Makespan)
			}
			if st1.Iterations != 30 || st2.Iterations != 30 {
				t.Errorf("tasks=%d workers=%d: iterations %d/%d, want 30 (every global iteration exactly once)",
					tasks, workers, st1.Iterations, st2.Iterations)
			}
			if st1.FloorplanCalls != st2.FloorplanCalls || st1.Discarded != st2.Discarded {
				t.Errorf("tasks=%d workers=%d: counters differ between runs: %+v vs %+v",
					tasks, workers, st1, st2)
			}
		}
	}
}

// TestParallelHistoryMonotone asserts the merged improvement history is
// sorted: Elapsed must be monotone non-decreasing after the per-worker
// histories are interleaved (the satellite contract RandomStats.History
// documents).
func TestParallelHistoryMonotone(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 40, Seed: 99})
	a := arch.ZedBoard()
	_, stats, err := RSchedule(g, a, RandomOptions{MaxIterations: 40, Seed: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.History) == 0 {
		t.Fatal("no improvements recorded")
	}
	for i := 1; i < len(stats.History); i++ {
		if stats.History[i].Elapsed < stats.History[i-1].Elapsed {
			t.Fatalf("history Elapsed not monotone at %d: %v < %v",
				i, stats.History[i].Elapsed, stats.History[i-1].Elapsed)
		}
	}
	if stats.CapacityFactor > 1.0 || stats.CapacityFactor < capFloor*capShrink {
		t.Errorf("capacity factor %v outside [%v, 1]", stats.CapacityFactor, capFloor*capShrink)
	}
}

// TestParallelBudgetCancel proves a Cancel on the caller's budget stops all
// workers promptly: an unbounded search (no iteration cap, no time budget)
// must return shortly after the cancel instead of spinning.
func TestParallelBudgetCancel(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 40, Seed: 5})
	a := arch.ZedBoard()
	bud := budget.New(budget.Options{})
	done := make(chan error, 1)
	go func() {
		_, _, err := RSchedule(g, a, RandomOptions{Budget: bud, Seed: 1, Workers: 4})
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	bud.Cancel()
	select {
	case err := <-done:
		// Workers that found an incumbent return it; otherwise the fallback
		// runs under the cancelled budget and surfaces a typed error.
		if err != nil && !errors.Is(err, budget.ErrExhausted) {
			t.Fatalf("unexpected error after cancel: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("workers did not stop within 10s of Cancel")
	}
}

// TestParallelWorkerValidation rejects a negative worker count.
func TestParallelWorkerValidation(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 10, Seed: 1})
	if _, _, err := RSchedule(g, arch.ZedBoard(), RandomOptions{MaxIterations: 2, Workers: -3}); err == nil {
		t.Error("negative worker count accepted")
	}
}

// TestMixSeedStreams pins that worker seed streams are pairwise distinct for
// realistic pool sizes — equal streams would make workers duplicate work.
func TestMixSeedStreams(t *testing.T) {
	seen := map[int64]int{}
	for _, seed := range []int64{0, 1, -1, 7, 1 << 40} {
		for w := 0; w < 64; w++ {
			s := mixSeed(seed, w)
			if prev, dup := seen[s]; dup {
				t.Fatalf("mixSeed collision: seed=%d w=%d equals earlier stream %d", seed, w, prev)
			}
			seen[s] = w
		}
	}
}
