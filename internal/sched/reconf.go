package sched

import (
	"fmt"
	"sort"
)

// reconfTask is one reconfiguration rt ∈ RT (§V-G): it loads the bitstream
// of out between the executions of in and out inside a region.
type reconfTask struct {
	region     *regionState
	in, out    int
	start, end int64
}

// buildReconfTasks derives the reconfiguration tasks from the region
// contents: one per consecutive pair of tasks in a region, skipping pairs
// that share an implementation name when module reuse is enabled (the
// paper's future-work extension). The tasks live in a scratch backing array
// sized up front, so the returned pointers stay stable (appends never
// reallocate under them) yet nothing is heap-allocated per pair after the
// first run at a given size.
func (s *state) buildReconfTasks(moduleReuse bool) []*reconfTask {
	total := 0
	for _, r := range s.regions {
		if n := len(r.tasks); n > 1 {
			total += n - 1
		}
		if r.warm && r.pinned < 0 && len(r.tasks) > 0 {
			total++ // possible boundary reconfiguration (in = -1)
		}
	}
	if cap(s.rtBuf) < total {
		s.rtBuf = make([]reconfTask, 0, total)
	}
	s.rtBuf = s.rtBuf[:0]
	rts := s.rtPtrBuf[:0]
	for _, r := range s.regions {
		tasks := s.regionTasksByStart(r)
		// A warm region's first tail task executes over a stale resident
		// module: emit the boundary reconfiguration that loads it, with no
		// ingoing task (the region's last occupant is frozen prefix-side).
		// A pin needs none — its committed reconfiguration already loads it
		// — and module reuse waives it when the resident module matches.
		if r.warm && r.pinned < 0 && len(tasks) > 0 {
			first := tasks[0]
			if !(moduleReuse && r.loaded != "" && s.selectedImpl(first).Name == r.loaded) {
				s.rtBuf = append(s.rtBuf, reconfTask{region: r, in: -1, out: first})
				rts = append(rts, &s.rtBuf[len(s.rtBuf)-1])
			}
		}
		for k := 1; k < len(tasks); k++ {
			tin, tout := tasks[k-1], tasks[k]
			if moduleReuse && s.selectedImpl(tin).Name == s.selectedImpl(tout).Name {
				continue
			}
			s.rtBuf = append(s.rtBuf, reconfTask{region: r, in: tin, out: tout})
			rts = append(rts, &s.rtBuf[len(s.rtBuf)-1])
		}
	}
	s.rtPtrBuf = rts
	return rts
}

// channelSet tracks the busy intervals of the reconfiguration controllers
// (one in the paper; ref [8]'s multi-controller generalisation is supported
// as an extension). Each channel keeps its reconfigurations sorted by start.
type channelSet struct {
	chans [][]*reconfTask
	// floors[c] is the warm-start busy-until floor of controller c: an
	// in-flight committed reconfiguration occupies it until then.
	floors []int64
}

func newChannelSet(n int) *channelSet {
	return &channelSet{chans: make([][]*reconfTask, n), floors: make([]int64, n)}
}

// channels returns the state's reusable channelSet reset to n empty
// controller timelines (their backing arrays are retained), seeded with the
// warm-start controller floors when the run has an initial platform state.
// The previous result is invalidated; phases 7's placement and repair
// passes use it strictly sequentially.
func (s *state) channels(n int) *channelSet {
	cs := &s.chanBuf
	if cap(cs.chans) < n {
		cs.chans = make([][]*reconfTask, n)
	}
	cs.chans = cs.chans[:n]
	if cap(cs.floors) < n {
		cs.floors = make([]int64, n)
	}
	cs.floors = cs.floors[:n]
	for c := range cs.chans {
		cs.chans[c] = cs.chans[c][:0]
		cs.floors[c] = 0
		if s.warm != nil && c < len(s.warm.ReconfAvail) {
			cs.floors[c] = s.warm.ReconfAvail[c]
		}
	}
	return cs
}

// earliest returns the channel and start of the earliest placement of a
// dur-long reconfiguration beginning at or after tmin.
func (cs *channelSet) earliest(tmin, dur int64) (int, int64) {
	bestC, bestS := 0, int64(-1)
	for c := range cs.chans {
		lo := tmin
		if cs.floors[c] > lo {
			lo = cs.floors[c]
		}
		st := gapSearch(cs.chans[c], lo, dur)
		if bestS < 0 || st < bestS {
			bestC, bestS = c, st
		}
	}
	return bestC, bestS
}

// insert places rt (whose start/end are set) on channel c.
func (cs *channelSet) insert(c int, rt *reconfTask) {
	tl := cs.chans[c]
	i := sort.Search(len(tl), func(k int) bool { return tl[k].start >= rt.start })
	tl = append(tl, nil)
	copy(tl[i+1:], tl[i:])
	tl[i] = rt
	cs.chans[c] = tl
}

// lastEnd returns the latest end on channel c (its warm-start floor when
// idle, 0 on a cold controller).
func (cs *channelSet) lastEnd(c int) int64 {
	tl := cs.chans[c]
	end := cs.floors[c]
	for _, rt := range tl {
		if rt.end > end {
			end = rt.end
		}
	}
	return end
}

// minLastEndChannel returns the channel whose last reconfiguration ends
// first — the back-to-back target for critical reconfigurations.
func (cs *channelSet) minLastEndChannel() (int, int64) {
	bestC, bestE := 0, cs.lastEnd(0)
	for c := 1; c < len(cs.chans); c++ {
		if e := cs.lastEnd(c); e < bestE {
			bestC, bestE = c, e
		}
	}
	return bestC, bestE
}

// scheduleReconfigs runs phase 7 (§V-G): place every reconfiguration on the
// reconfiguration controller(s), critical reconfigurations (those whose
// outgoing task is critical) first, then repair any inconsistencies
// introduced by delay propagation.
//
// Deviation from the paper: for non-critical reconfigurations the paper
// shifts already-scheduled reconfigurations ahead in time on collision; we
// instead place the new reconfiguration in the first sufficiently large gap
// of a controller timeline at or after its T_MIN. Both policies keep the
// controllers conflict-free; first-fit never delays previously scheduled
// reconfigurations, which simplifies the correctness argument, and the
// subsequent repair pass handles every remaining interaction.
func (s *state) scheduleReconfigs(moduleReuse bool) ([]*reconfTask, error) {
	rts := s.buildReconfTasks(moduleReuse)
	crit, non := s.rtCritBuf[:0], s.rtNonBuf[:0]
	for _, rt := range rts {
		if s.critical(rt.out) {
			crit = append(crit, rt)
		} else {
			non = append(non, rt)
		}
	}
	s.rtCritBuf, s.rtNonBuf = crit, non
	byTmin := func(a []*reconfTask) {
		sort.SliceStable(a, func(i, j int) bool { return s.rtMin(a[i]) < s.rtMin(a[j]) })
	}
	byTmin(crit)
	byTmin(non)

	cs := s.channels(s.a.ReconfiguratorCount())

	// Critical reconfigurations: back-to-back on the least-loaded
	// controller, each delay fully propagated (its outgoing task is on the
	// critical path).
	for _, rt := range crit {
		tmin := s.rtMin(rt) // step 1: recompute the window
		c, lastEnd := cs.minLastEndChannel()
		st := tmin
		if lastEnd > st {
			st = lastEnd
		}
		rt.start, rt.end = st, st+rt.region.reconf
		cs.insert(c, rt)
		if rt.end > s.start(rt.out) {
			if err := s.delay(rt.out, rt.end); err != nil {
				return nil, err
			}
		}
	}
	// Non-critical reconfigurations: earliest gap at or after T_MIN across
	// the controllers.
	for _, rt := range non {
		tmin := s.rtMin(rt)
		c, st := cs.earliest(tmin, rt.region.reconf)
		rt.start, rt.end = st, st+rt.region.reconf
		cs.insert(c, rt)
		if rt.end > s.start(rt.out) {
			if err := s.delay(rt.out, rt.end); err != nil {
				return nil, err
			}
		}
	}
	if err := s.repairReconfigs(rts); err != nil {
		return nil, err
	}
	return rts, nil
}

// gapSearch returns the earliest start ≥ tmin such that [start, start+dur)
// avoids every interval in the start-sorted timeline.
func gapSearch(timeline []*reconfTask, tmin, dur int64) int64 {
	st := tmin
	for _, rt := range timeline {
		if rt.end <= st {
			continue
		}
		if rt.start >= st+dur {
			break
		}
		st = rt.end
	}
	return st
}

// repairReconfigs restores, after all delay propagation, the invariants
// that (a) a reconfiguration starts no earlier than its ingoing task ends,
// (b) reconfigurations never exceed the controller capacity, and (c) an
// outgoing task starts no earlier than its reconfiguration ends.
//
// Each pass re-places every reconfiguration from scratch: tasks are taken
// in order of their current earliest start (critical ones first on ties)
// and dropped into the earliest sufficiently large controller gap, then
// any outgoing task starting too early is delayed. Re-placement — rather
// than pushing neighbouring reconfigurations later — is essential: pushing
// creates a feedback channel outside the dependency DAG (A pushes B on the
// reconfigurator while B's delayed output feeds A's input) that can grow
// start times forever. With re-placement, mutual growth would require a
// cycle in the combined task DAG, which cannot exist, so the loop reaches a
// fixpoint; the guard converts a logic error into a diagnosable failure.
func (s *state) repairReconfigs(rts []*reconfTask) error {
	if len(rts) == 0 {
		return nil
	}
	guard := 100 + 4*len(rts) + 4*s.g.N()
	for iter := 0; iter < guard; iter++ {
		order := append(s.rtOrderBuf[:0], rts...)
		s.rtOrderBuf = order
		sort.SliceStable(order, func(i, j int) bool {
			li, lj := s.rtMin(order[i]), s.rtMin(order[j])
			if li != lj {
				return li < lj
			}
			ci, cj := s.critical(order[i].out), s.critical(order[j].out)
			if ci != cj {
				return ci
			}
			return order[i].out < order[j].out
		})
		cs := s.channels(s.a.ReconfiguratorCount())
		changed := false
		for _, rt := range order {
			lo := s.rtMin(rt)
			c, st := cs.earliest(lo, rt.region.reconf)
			if st != rt.start {
				rt.start, rt.end = st, st+rt.region.reconf
			}
			cs.insert(c, rt)
			if rt.end > s.start(rt.out) {
				if err := s.delay(rt.out, rt.end); err != nil {
					return err
				}
				changed = true
			}
		}
		if !changed {
			return nil
		}
	}
	return fmt.Errorf("sched: reconfiguration repair did not converge")
}
