package sched

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"resched/internal/arch"
	"resched/internal/budget"
	"resched/internal/faultinject"
	"resched/internal/floorplan"
	"resched/internal/obs"
	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

// Typed failure classes of the degradation ladder. All are errors.Is-able
// through any wrapping the schedulers apply.
var (
	// ErrFloorplanInfeasible marks a scheduler giving up because no
	// floorplan-feasible schedule was found within its retry policy. It is
	// floorplan.ErrInfeasible re-exported at the scheduler API; isk wraps
	// the same sentinel, so one errors.Is target covers every scheduler.
	ErrFloorplanInfeasible = floorplan.ErrInfeasible
	// ErrBudgetExhausted is budget.ErrExhausted re-exported at the
	// scheduler API: it matches any budget failure (cancellation, deadline
	// or node cap) wrapped by PA, PA-R, IS-k or the ladder.
	ErrBudgetExhausted = budget.ErrExhausted
	// ErrNoSoftwareFallback marks the bottom rung as unavailable: some task
	// has no software implementation (violating §III's assumption), or the
	// architecture has no processors to run one on.
	ErrNoSoftwareFallback = errors.New("no all-software fallback")
)

// Rung identifies which level of the degradation ladder produced a schedule.
type Rung int

const (
	// Full: the deterministic PA heuristic succeeded on the first attempt.
	Full Rung = iota
	// Retried: PA succeeded after §V-H shrink-and-restart retries.
	Retried
	// Randomized: PA failed, but the budgeted PA-R search found a
	// floorplan-feasible schedule.
	Randomized
	// SoftwareOnly: every search rung failed (or the budget ran dry); the
	// guaranteed all-software list schedule was emitted — processors only,
	// no regions, no reconfigurations.
	SoftwareOnly
)

// String names the rung.
func (r Rung) String() string {
	switch r {
	case Full:
		return "full"
	case Retried:
		return "retried"
	case Randomized:
		return "randomized"
	case SoftwareOnly:
		return "software-only"
	default:
		return fmt.Sprintf("Rung(%d)", int(r))
	}
}

// RobustOptions tune the degradation ladder.
type RobustOptions struct {
	// ModuleReuse is forwarded to every search rung.
	ModuleReuse bool
	// Floorplan configures the feasibility queries of the search rungs.
	Floorplan floorplan.Options
	// MaxRetries and ShrinkFactor tune the PA rung's §V-H restart loop
	// (defaults as in Options).
	MaxRetries   int
	ShrinkFactor float64
	// RandomIterations caps the PA-R rung's inner runs (default 32 when
	// neither it nor RandomTime is set, keeping the rung deterministic).
	RandomIterations int
	// RandomTime optionally bounds the PA-R rung by wall-clock instead.
	RandomTime time.Duration
	// RandomSeed seeds the PA-R rung (default 1).
	RandomSeed int64
	// Arena, when non-nil, is the reusable scratch space for the PA rung
	// (see Options.Arena); the PA-R rung keeps its own per-worker arenas.
	Arena *Arena
	// Budget bounds the whole ladder. When it runs dry the search rungs are
	// abandoned and the ladder drops straight to the software-only rung,
	// which needs no search.
	Budget *budget.Budget
	// Faults, when armed, drives failure paths in every rung.
	Faults *faultinject.Set
	// Trace records a robust.run span annotated with the armed faults and
	// the rung that fired, plus the usual per-rung scheduler spans.
	Trace *obs.Trace
	// Initial, when non-nil and non-empty, is the warm platform state every
	// rung schedules from (see Options.Initial). The software-only rung
	// honours it too: release and processor floors apply, and pinned tasks
	// execute in their regions.
	Initial *schedule.PlatformState
	// FloorplanHint warm-starts the PA rung's phase-8 feasibility check
	// (see Options.FloorplanHint); an unverifiable hint is ignored.
	FloorplanHint []floorplan.Placement
	// InitialIncumbent warm-starts the PA-R rung (see
	// RandomOptions.InitialIncumbent). The PA rung runs first regardless:
	// the ladder's rung order is part of its contract.
	InitialIncumbent *schedule.Schedule
}

func (o RobustOptions) withDefaults() RobustOptions {
	if o.RandomIterations == 0 && o.RandomTime == 0 {
		o.RandomIterations = 32
	}
	if o.RandomSeed == 0 {
		o.RandomSeed = 1
	}
	return o
}

// Result is the outcome of a Robust run.
type Result struct {
	// Schedule is the emitted schedule; always non-nil when the error is
	// nil.
	Schedule *schedule.Schedule
	// Rung tells which ladder level produced the schedule.
	Rung Rung
	// Reasons chains the failures of the rungs above the one that fired,
	// in ladder order; inspect with errors.Is (ErrFloorplanInfeasible,
	// ErrBudgetExhausted, ...). Empty when the first rung succeeded.
	Reasons []error
	// Placements holds the floorplan of the final schedule's regions; empty
	// for the software-only rung, which uses none.
	Placements []floorplan.Placement
	// Stats carries the PA rung's statistics when that rung fired.
	Stats *Stats
}

// Robust runs the degradation ladder: PA (with its §V-H shrink retries) →
// budgeted PA-R → the guaranteed all-software list schedule. It returns the
// first schedule a rung produces; the only way it fails is a graph no rung
// can schedule — a dependency cycle, or a task without a software
// implementation once the search rungs are out (ErrNoSoftwareFallback).
// Whenever every task has a software implementation and at least one
// processor exists, Robust returns a valid schedule and nil error, no
// matter which faults or budgets are in force.
func Robust(g *taskgraph.Graph, a *arch.Architecture, opts RobustOptions) (*Result, error) {
	opts = opts.withDefaults()
	run := opts.Trace.Start("robust.run",
		obs.Str("faults", strings.Join(opts.Faults.Armed(), ",")))
	defer run.End()

	res := &Result{}
	fail := func(rung Rung, err error) {
		res.Reasons = append(res.Reasons, fmt.Errorf("%v rung: %w", rung, err))
		opts.Trace.Count("robust.rung_failures", 1)
		// Rung transitions go to the flight recorder: a degraded service
		// explains which rungs it fell through and why.
		opts.Trace.Event("robust.rung_failed",
			obs.Str("rung", rung.String()), obs.Str("reason", err.Error()))
	}
	done := func(rung Rung) (*Result, error) {
		res.Rung = rung
		run.Annotate(obs.Str("rung", rung.String()))
		opts.Trace.Event("robust.rung_selected",
			obs.Str("rung", rung.String()), obs.Int("failures_above", int64(len(res.Reasons))))
		return res, nil
	}

	// Rungs 1+2: deterministic PA with shrink retries.
	sch, stats, err := Schedule(g, a, Options{
		ModuleReuse: opts.ModuleReuse, Floorplan: opts.Floorplan,
		MaxRetries: opts.MaxRetries, ShrinkFactor: opts.ShrinkFactor,
		Arena:         opts.Arena,
		Initial:       opts.Initial,
		FloorplanHint: opts.FloorplanHint,
		Budget:        opts.Budget, Faults: opts.Faults, Trace: opts.Trace,
	})
	if err == nil {
		res.Schedule, res.Stats, res.Placements = sch, stats, stats.Placements
		if stats.Retries > 0 {
			return done(Retried)
		}
		return done(Full)
	}
	fail(Full, err)

	// Rung 3: budgeted PA-R, skipped when the budget is already dry (it
	// could only fail the same way) or when PA failed structurally — a
	// validation error that re-running the pipeline cannot fix.
	structural := isStructural(g, a, err)
	if berr := opts.Budget.Check(); berr != nil {
		fail(Randomized, berr)
	} else if structural {
		fail(Randomized, errSkippedStructural)
	} else {
		sch, _, rerr := RSchedule(g, a, RandomOptions{
			TimeBudget: opts.RandomTime, MaxIterations: opts.RandomIterations,
			Seed: opts.RandomSeed, ModuleReuse: opts.ModuleReuse,
			Floorplan: opts.Floorplan, Budget: opts.Budget,
			Initial:          opts.Initial,
			InitialIncumbent: opts.InitialIncumbent,
			Faults:           opts.Faults, Trace: opts.Trace,
		})
		if rerr == nil {
			res.Schedule = sch
			return done(Randomized)
		}
		fail(Randomized, rerr)
	}

	// Rung 4: the guaranteed fallback. Needs no fabric, no floorplan and no
	// search, so budgets and injected faults cannot touch it.
	sw, serr := SoftwareOnlyScheduleFrom(g, a, opts.Initial)
	if serr != nil {
		fail(SoftwareOnly, serr)
		return res, fmt.Errorf("sched: robust ladder exhausted: %w", serr)
	}
	res.Schedule = sw
	return done(SoftwareOnly)
}

// errSkippedStructural documents a skipped PA-R rung in the reason chain.
var errSkippedStructural = errors.New("skipped: deterministic failure was structural, not search-related")

// isStructural reports whether the PA failure would repeat identically on
// any rerun: instance validation errors, as opposed to floorplan
// infeasibility or budget exhaustion, which a different search might avoid.
func isStructural(g *taskgraph.Graph, a *arch.Architecture, err error) bool {
	if errors.Is(err, ErrFloorplanInfeasible) || errors.Is(err, ErrBudgetExhausted) {
		return false
	}
	return g.Validate() != nil || a.Validate() != nil
}

// SoftwareOnlySchedule builds the ladder's bottom rung directly: every task
// on its fastest software implementation, list-scheduled over the
// processors in topological order with earliest-finish processor selection.
// Under §III's assumptions (every task has a software implementation, at
// least one processor) this always succeeds — no fabric, regions or
// reconfigurations are involved, so there is nothing to floorplan and
// nothing to search. The result is deliberately conservative: a feasible
// anchor, not a competitive makespan.
func SoftwareOnlySchedule(g *taskgraph.Graph, a *arch.Architecture) (*schedule.Schedule, error) {
	return SoftwareOnlyScheduleFrom(g, a, nil)
}

// ReasonSummary renders the reason chain compactly for CLI output.
func (r *Result) ReasonSummary() string {
	if len(r.Reasons) == 0 {
		return ""
	}
	parts := make([]string, len(r.Reasons))
	for i, e := range r.Reasons {
		parts[i] = e.Error()
	}
	return strings.Join(parts, "; ")
}
