package sched

import (
	"fmt"

	"resched/internal/arch"
	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

// Warm-start support: an epoch re-plan schedules the tail of a problem on a
// platform the committed prefix left busy — regions mid-reconfiguration or
// holding a module, processors occupied, reconfiguration controllers in
// flight, tasks released by frozen predecessors. The state below threads
// those floors through the eight phases; with a nil/empty initial state
// every hook degenerates to a no-op and the pipeline is bit-identical to
// the historical t=0 run.

// seedWarm imposes the initial platform state on a freshly reset pipeline
// state: release floors, pre-created warm regions (tail region i is warm
// region i, by construction order) and pin bookkeeping. Implementation
// selection has not run yet; pins are applied by applyPins afterwards.
func (s *state) seedWarm(ps *schedule.PlatformState) error {
	s.warm = ps
	n := s.g.N()
	for t := 0; t < n && t < len(ps.Release); t++ {
		if ps.Release[t] > s.release[t] {
			s.release[t] = ps.Release[t]
		}
	}
	if len(ps.ReconfAvail) > s.a.ReconfiguratorCount() {
		return fmt.Errorf("sched: initial state has %d controller floors, architecture has %d controller(s)",
			len(ps.ReconfAvail), s.a.ReconfiguratorCount())
	}
	for i, wr := range ps.Regions {
		r := s.newRegion(wr.Res)
		r.warm = true
		r.availFrom = wr.Avail
		r.loaded = wr.Loaded
		if wr.Pinned < 0 {
			continue
		}
		if wr.Pinned >= n {
			return fmt.Errorf("sched: warm region %d pins task %d, graph has %d tasks", i, wr.Pinned, n)
		}
		task := s.g.Tasks[wr.Pinned]
		if wr.PinnedImpl < 0 || wr.PinnedImpl >= len(task.Impls) {
			return fmt.Errorf("sched: warm region %d pins task %d impl %d out of range", i, wr.Pinned, wr.PinnedImpl)
		}
		im := task.Impls[wr.PinnedImpl]
		if im.Kind != taskgraph.HW {
			return fmt.Errorf("sched: warm region %d pins task %d to software impl %q", i, wr.Pinned, im.Name)
		}
		if !im.Res.Fits(wr.Res) {
			return fmt.Errorf("sched: warm region %d (%v) cannot host pinned impl %q (%v)", i, wr.Res, im.Name, im.Res)
		}
		r.pinned, r.pinnedImpl = wr.Pinned, wr.PinnedImpl
	}
	return nil
}

// applyPins overrides phase 1's implementation selection for pinned tasks:
// the committed reconfiguration already loads a specific bitstream, so the
// tail plan has no freedom there.
func (s *state) applyPins() {
	for _, r := range s.regions {
		if r.warm && r.pinned >= 0 {
			s.setImpl(r.pinned, r.pinnedImpl)
		}
	}
}

// placePinned commits every pinned task into its warm region before the
// regions-definition walk runs, at or after the instant the in-flight
// reconfiguration completes. The ordering edges assignToRegion inserts keep
// the pin first in its region under all later delay propagation.
func (s *state) placePinned() error {
	for _, r := range s.regions {
		if !r.warm || r.pinned < 0 {
			continue
		}
		if err := s.delay(r.pinned, r.availFrom); err != nil {
			return err
		}
		if err := s.assignToRegion(r.pinned, r); err != nil {
			return err
		}
	}
	return nil
}

// regionFloor is the earliest instant task t may start executing in region
// r under the warm platform state. Cold regions have no floor. A pinned
// task starts as soon as its committed reconfiguration completes (no new
// load is needed); any other task must wait for the pin to run first. An
// unpinned warm region holds a stale module, so a first occupant needs a
// boundary reconfiguration after the region falls idle — the floor bakes
// that load in conservatively (module reuse may later waive it in phase 7;
// the floor only costs slack, never validity).
func (s *state) regionFloor(r *regionState, t int) int64 {
	if !r.warm {
		return 0
	}
	if r.pinned >= 0 {
		if t == r.pinned {
			return r.availFrom
		}
		return s.end(r.pinned)
	}
	return r.availFrom + r.reconf
}

// rtMin is the earliest start of a reconfiguration: after its ingoing task,
// or — for a boundary reconfiguration loading a warm region's first tail
// task (in < 0) — once the region falls idle.
func (s *state) rtMin(rt *reconfTask) int64 {
	if rt.in >= 0 {
		return s.end(rt.in)
	}
	return rt.region.availFrom
}

// SoftwareOnlyScheduleFrom is SoftwareOnlySchedule generalised to a warm
// platform: release and processor floors are honoured, and pinned tasks —
// whose committed reconfigurations force them into their regions — execute
// there while everything else runs in software. It retains the bottom
// rung's guarantee: no search, no floorplan, no new reconfigurations.
func SoftwareOnlyScheduleFrom(g *taskgraph.Graph, a *arch.Architecture, ps *schedule.PlatformState) (*schedule.Schedule, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	if g.N() > 0 && a.Processors <= 0 {
		return nil, fmt.Errorf("sched: %w: architecture has no processors", ErrNoSoftwareFallback)
	}
	if ps.Empty() {
		ps = nil
	}
	impl := make([]int, g.N())
	target := make([]schedule.Target, g.N())
	var regFree []int64
	if ps != nil {
		regFree = make([]int64, len(ps.Regions))
		for i, wr := range ps.Regions {
			regFree[i] = wr.Avail
			if wr.Pinned < 0 {
				continue
			}
			t := wr.Pinned
			if t >= g.N() || wr.PinnedImpl < 0 || wr.PinnedImpl >= len(g.Tasks[t].Impls) {
				return nil, fmt.Errorf("sched: warm region %d pins invalid task %d / impl %d", i, t, wr.PinnedImpl)
			}
			impl[t] = wr.PinnedImpl
			target[t] = schedule.Target{Kind: schedule.OnRegion, Index: i}
		}
	}
	for t, task := range g.Tasks {
		if target[t].Kind == schedule.OnRegion {
			continue // pinned
		}
		sw := task.FastestSW()
		if sw < 0 {
			return nil, fmt.Errorf("sched: %w: task %d (%s) has no software implementation",
				ErrNoSoftwareFallback, t, task.Name)
		}
		if task.Impls[sw].Time <= 0 {
			return nil, fmt.Errorf("sched: task %d (%s) has non-positive software time %d",
				t, task.Name, task.Impls[sw].Time)
		}
		impl[t] = sw
	}

	sch := schedule.New(g, a)
	sch.Algorithm = "SW-only"
	if ps != nil {
		for _, wr := range ps.Regions {
			sch.AddRegion(wr.Res)
		}
	}
	procFree := make([]int64, a.Processors)
	if ps != nil {
		for p := range procFree {
			if p < len(ps.ProcAvail) {
				procFree[p] = ps.ProcAvail[p]
			}
		}
	}
	for _, t := range order {
		var est int64
		if ps != nil && t < len(ps.Release) {
			est = ps.Release[t]
		}
		for _, p := range g.Pred(t) {
			if end := sch.Tasks[p].End + g.EdgeComm(p, t); end > est {
				est = end
			}
		}
		if target[t].Kind == schedule.OnRegion {
			ri := target[t].Index
			start := est
			if regFree[ri] > start {
				start = regFree[ri]
			}
			end := start + g.Tasks[t].Impls[impl[t]].Time
			regFree[ri] = end
			sch.Tasks[t] = schedule.Assignment{Impl: impl[t], Target: target[t], Start: start, End: end}
			continue
		}
		// Earliest-finishing processor, lowest index on ties.
		proc := 0
		for q := 1; q < a.Processors; q++ {
			if procFree[q] < procFree[proc] {
				proc = q
			}
		}
		start := est
		if procFree[proc] > start {
			start = procFree[proc]
		}
		end := start + g.Tasks[t].Impls[impl[t]].Time
		procFree[proc] = end
		sch.Tasks[t] = schedule.Assignment{
			Impl:   impl[t],
			Target: schedule.Target{Kind: schedule.OnProcessor, Index: proc},
			Start:  start,
			End:    end,
		}
	}
	sch.ComputeMakespan()
	return sch, nil
}
