package sched

import (
	"testing"

	"resched/internal/benchgen"
	"resched/internal/taskgraph"
)

// mustEdge adds a dependency or fails the test; the library itself no longer
// panics on construction errors.
func mustEdge(tb testing.TB, g *taskgraph.Graph, from, to int) {
	tb.Helper()
	if err := g.AddEdge(from, to); err != nil {
		tb.Fatal(err)
	}
}

// genGraph generates a benchmark graph or fails the test.
func genGraph(tb testing.TB, cfg benchgen.Config) *taskgraph.Graph {
	tb.Helper()
	g, err := benchgen.Generate(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return g
}
