package sched

import (
	"testing"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/floorplan"
	"resched/internal/resources"
	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

func sw(name string, t int64) taskgraph.Implementation {
	return taskgraph.Implementation{Name: name, Kind: taskgraph.SW, Time: t}
}

func hw(name string, t int64, clb, bram, dsp int) taskgraph.Implementation {
	return taskgraph.Implementation{Name: name, Kind: taskgraph.HW, Time: t, Res: resources.Vec(clb, bram, dsp)}
}

func mustSchedule(t *testing.T, g *taskgraph.Graph, a *arch.Architecture, opts Options) (*schedule.Schedule, *Stats) {
	t.Helper()
	sch, stats, err := Schedule(g, a, opts)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if errs := schedule.Check(sch); len(errs) > 0 {
		var buf []byte
		for _, e := range errs {
			buf = append(buf, (e.Error() + "\n")...)
		}
		t.Fatalf("invalid schedule:\n%s", buf)
	}
	return sch, stats
}

func TestSingleTaskHW(t *testing.T) {
	g := taskgraph.New("one")
	g.AddTask("t0", sw("s", 1000), hw("h", 100, 500, 0, 0))
	sch, _ := mustSchedule(t, g, arch.ZedBoard(), Options{})
	if sch.Makespan != 100 {
		t.Errorf("makespan = %d, want 100 (HW selected)", sch.Makespan)
	}
	if sch.HWTaskCount() != 1 || len(sch.Regions) != 1 {
		t.Errorf("expected one HW task in one region: %s", sch.Summary())
	}
	if len(sch.Reconfs) != 0 {
		t.Errorf("single task needs no reconfiguration, got %d", len(sch.Reconfs))
	}
}

func TestSingleTaskSWFasterThanHW(t *testing.T) {
	g := taskgraph.New("one")
	g.AddTask("t0", sw("s", 50), hw("h", 100, 500, 0, 0))
	sch, _ := mustSchedule(t, g, arch.ZedBoard(), Options{})
	if sch.Makespan != 50 || sch.HWTaskCount() != 0 {
		t.Errorf("software implementation should win: %s", sch.Summary())
	}
}

func TestChainOnTinyDeviceFollowsPaperProcedure(t *testing.T) {
	// Three sequential tasks on a device that fits only one region. The
	// paper's critical-task procedure (§V-C) cannot place t1: its window
	// touches t0's with no room for a reconfiguration, the device has no
	// capacity for a second region, so t1 falls back to software. Its long
	// software execution then opens a window gap that lets t2 reuse t0's
	// region — and the reconfiguration hides entirely under t1's run.
	g := taskgraph.New("chain")
	a := arch.ZedBoard()
	small := &arch.Architecture{
		Name: "small", Processors: 2, RecFreq: a.RecFreq, Bits: a.Bits,
		MaxRes: resources.Vec(700, 4, 4),
	}
	for i := 0; i < 3; i++ {
		g.AddTask("t", sw("s", 5000), hw("h", 100, 600, 2, 2))
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	sch, _ := mustSchedule(t, g, small, Options{SkipFloorplan: true})
	if len(sch.Regions) != 1 {
		t.Fatalf("want 1 region, got %d", len(sch.Regions))
	}
	if sch.HWTaskCount() != 2 {
		t.Fatalf("want 2 HW tasks (t1 falls back to SW), got %d", sch.HWTaskCount())
	}
	if len(sch.Reconfs) != 1 {
		t.Fatalf("want 1 reconfiguration, got %d", len(sch.Reconfs))
	}
	// 100 (t0 HW) + 5000 (t1 SW) + 100 (t2 HW); the reconfiguration is
	// masked by t1's software execution.
	if sch.Makespan != 5200 {
		t.Errorf("makespan = %d, want 5200", sch.Makespan)
	}
}

func TestParallelTasksGetParallelRegions(t *testing.T) {
	// Independent tasks with plenty of device space: every task should run
	// in its own region concurrently.
	g := taskgraph.New("par")
	for i := 0; i < 4; i++ {
		g.AddTask("t", sw("s", 5000), hw("h", 200, 500, 0, 0))
	}
	sch, _ := mustSchedule(t, g, arch.ZedBoard(), Options{})
	if len(sch.Regions) != 4 || sch.Makespan != 200 {
		t.Errorf("want 4 regions, makespan 200; got %s", sch.Summary())
	}
}

func TestSWFallbackWhenDeviceTiny(t *testing.T) {
	a := &arch.Architecture{
		Name: "tiny", Processors: 2, RecFreq: 3200, Bits: resources.DefaultBits,
		MaxRes: resources.Vec(10, 0, 0),
	}
	g := taskgraph.New("g")
	for i := 0; i < 3; i++ {
		g.AddTask("t", sw("s", 300), hw("h", 50, 500, 0, 0))
	}
	sch, _ := mustSchedule(t, g, a, Options{SkipFloorplan: true})
	if sch.HWTaskCount() != 0 {
		t.Errorf("tasks cannot fit a 10-slice device: %s", sch.Summary())
	}
	// Two processors, three 300-tick tasks → 600 ticks.
	if sch.Makespan != 600 {
		t.Errorf("makespan = %d, want 600", sch.Makespan)
	}
}

// TestFigure1Motivation reproduces the §IV scenario: task t1 has a large
// fast implementation and a small resource-efficient one; t2 and t3 depend
// on t1 and fit alongside the small variant only. Selecting the efficient
// implementation must win overall despite being locally slower.
func TestFigure1Motivation(t *testing.T) {
	// Device: 1000 slices (plus token BRAM/DSP so the scarcity weights of
	// eq. (4) are meaningful — with a single resource kind its weight is 0).
	a := &arch.Architecture{
		Name: "fig1", Processors: 1, RecFreq: 3200, Bits: resources.DefaultBits,
		MaxRes: resources.Vec(1000, 10, 10),
	}
	g := taskgraph.New("fig1")
	g.AddTask("t1",
		sw("t1_sw", 100000),
		hw("t1_1", 300, 900, 0, 0), // fast but occupies nearly the device
		hw("t1_2", 500, 450, 0, 0)) // slower, half the area
	g.AddTask("t2", sw("t2_sw", 100000), hw("t2_hw", 400, 500, 0, 0))
	g.AddTask("t3", sw("t3_sw", 100000), hw("t3_hw", 400, 500, 0, 0))
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)

	sch, _ := mustSchedule(t, g, a, Options{SkipFloorplan: true})
	if got := sch.Impl(0).Name; got != "t1_2" {
		t.Errorf("implementation selection picked %q, want resource-efficient t1_2", got)
	}
	// The efficient choice leaves room for a second region; t2 and t3 end
	// up time-sharing it (t3 is first pushed to software by the §V-C
	// critical procedure, then the software-balancing phase pulls it back
	// into t2's region behind a reconfiguration) — exactly the right-hand
	// schedule of Figure 1: t1 500 + t2 400 + reconf 364 + t3 400 = 1664.
	if sch.HWTaskCount() != 3 || len(sch.Regions) != 2 {
		t.Errorf("want all tasks in hardware in two regions: %s", sch.Summary())
	}
	if sch.Makespan != 1664 {
		t.Errorf("makespan = %d, want 1664", sch.Makespan)
	}
	// The strict-windows ablation cannot rescue t3.
	strict, _ := mustSchedule(t, g, a, Options{SkipFloorplan: true, StrictWindows: true})
	if strict.Makespan <= sch.Makespan {
		t.Errorf("strict windows should be worse here: %d vs %d", strict.Makespan, sch.Makespan)
	}
}

func TestDeterminism(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 40, Seed: 9})
	a := arch.ZedBoard()
	s1, _ := mustSchedule(t, g, a, Options{})
	s2, _ := mustSchedule(t, g, a, Options{})
	if s1.Makespan != s2.Makespan || len(s1.Regions) != len(s2.Regions) {
		t.Fatal("PA is not deterministic")
	}
	for i := range s1.Tasks {
		if s1.Tasks[i] != s2.Tasks[i] {
			t.Fatalf("task %d assignment differs", i)
		}
	}
}

// TestSuiteValidity is the central property test: on real suite instances
// of every size, PA must produce schedules that pass the independent checker
// and whose regions admit a verified floorplan.
func TestSuiteValidity(t *testing.T) {
	a := arch.ZedBoard()
	for _, n := range []int{10, 30, 50, 80, 100} {
		for idx := 0; idx < 3; idx++ {
			g := genGraph(t, benchgen.Config{Tasks: n, Seed: int64(n*100 + idx)})
			sch, stats := mustSchedule(t, g, a, Options{})
			if sch.Makespan <= 0 {
				t.Fatalf("n=%d idx=%d: non-positive makespan", n, idx)
			}
			// The floorplan placements returned must verify.
			if len(stats.Placements) != len(sch.Regions) {
				t.Fatalf("n=%d idx=%d: %d placements for %d regions", n, idx, len(stats.Placements), len(sch.Regions))
			}
			regionRes := regionRequirements(sch)
			if err := floorplan.Verify(a.Fabric, regionRes, stats.Placements); err != nil {
				t.Fatalf("n=%d idx=%d: %v", n, idx, err)
			}
		}
	}
}

// TestHWBeatsAllSWOnSuite checks the point of the exercise: PA schedules
// must beat the trivial all-software schedule.
func TestHWBeatsAllSWOnSuite(t *testing.T) {
	a := arch.ZedBoard()
	for _, n := range []int{20, 60} {
		g := genGraph(t, benchgen.Config{Tasks: n, Seed: int64(n)})
		sch, _ := mustSchedule(t, g, a, Options{})
		// All-software bound: total SW time / processors is a loose lower
		// bound for all-SW; use the serial SW sum as the comparator's upper
		// bound and require PA to be clearly below it.
		var swSerial int64
		for _, task := range g.Tasks {
			swSerial += task.Impls[task.FastestSW()].Time
		}
		if sch.Makespan >= swSerial {
			t.Errorf("n=%d: PA makespan %d not better than serial software %d", n, sch.Makespan, swSerial)
		}
	}
}

func TestModuleReuseSkipsReconfigs(t *testing.T) {
	// t0 and t2 share an implementation and end up in the same region,
	// separated by a long software-only task that gives the region the
	// window gap §V-C requires. Without module reuse one reconfiguration
	// is scheduled (masked under t1); with it, none.
	a := &arch.Architecture{
		Name: "small", Processors: 1, RecFreq: 3200, Bits: resources.DefaultBits,
		MaxRes: resources.Vec(700, 5, 5),
	}
	g := taskgraph.New("reuse")
	shared := hw("shared_hw", 100, 600, 0, 0)
	g.AddTask("t0", sw("s0", 5000), shared)
	g.AddTask("t1", sw("s1", 2000))
	g.AddTask("t2", sw("s2", 5000), shared)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)

	plain, _ := mustSchedule(t, g, a, Options{SkipFloorplan: true})
	reuse, _ := mustSchedule(t, g, a, Options{SkipFloorplan: true, ModuleReuse: true})
	if plain.HWTaskCount() != 2 || len(plain.Regions) != 1 {
		t.Fatalf("setup broken: %s", plain.Summary())
	}
	if len(plain.Reconfs) != 1 {
		t.Fatalf("plain run: want 1 reconfiguration, got %d", len(plain.Reconfs))
	}
	if len(reuse.Reconfs) != 0 {
		t.Fatalf("module reuse: want 0 reconfigurations, got %d", len(reuse.Reconfs))
	}
	// Both schedules finish at 100 + 2000 + 100: the single reconfiguration
	// is masked by t1's software execution.
	if plain.Makespan != 2200 || reuse.Makespan != 2200 {
		t.Errorf("makespans = %d/%d, want 2200/2200", plain.Makespan, reuse.Makespan)
	}
}

func TestShrinkRetryPath(t *testing.T) {
	// A fabric-less architecture cannot floorplan: Schedule must fail
	// cleanly when the check is requested.
	a := arch.ZedBoard()
	a.Fabric = nil
	g := genGraph(t, benchgen.Config{Tasks: 10, Seed: 1})
	if _, _, err := Schedule(g, a, Options{}); err == nil {
		t.Error("fabric-less floorplanning accepted")
	}
	// SkipFloorplan works without a fabric.
	if _, _, err := Schedule(g, a, Options{SkipFloorplan: true}); err != nil {
		t.Errorf("SkipFloorplan run failed: %v", err)
	}
}

func TestInvalidInstanceRejected(t *testing.T) {
	g := taskgraph.New("bad")
	g.AddTask("t") // no implementations
	if _, _, err := Schedule(g, arch.ZedBoard(), Options{}); err == nil {
		t.Error("invalid graph accepted")
	}
	g2 := genGraph(t, benchgen.Config{Tasks: 5, Seed: 1})
	bad := arch.ZedBoard()
	bad.RecFreq = 0
	if _, _, err := Schedule(g2, bad, Options{}); err == nil {
		t.Error("invalid architecture accepted")
	}
}
