package sched

import (
	"fmt"
	"sort"

	"resched/internal/taskgraph"
)

func errNoSoftwareFallback(t int) error {
	return fmt.Errorf("sched: task %d has no software implementation to fall back to", t)
}

// totalReconfTime estimates the cumulative reconfiguration load per eq. (6):
// each region with k tasks needs k-1 reconfigurations (the first module is
// part of the initial configuration).
func (s *state) totalReconfTime() int64 {
	var tot int64
	for _, r := range s.regions {
		if n := int64(len(r.tasks)); n > 1 {
			tot += r.reconf * (n - 1)
		}
	}
	return tot
}

// balanceSoftware runs phase 4 (§V-D): software tasks that do have hardware
// implementations are moved onto underutilised regions when their earliest
// start lies beyond the estimated total reconfiguration time, so the move
// cannot add contention on the reconfigurator.
func (s *state) balanceSoftware() error {
	// Candidates: software tasks with at least one HW implementation,
	// by ascending T_MIN.
	cand := s.swBuf[:0]
	for t := 0; t < s.g.N(); t++ {
		if !s.isHW(t) && len(s.g.Tasks[t].HWImpls()) > 0 {
			cand = append(cand, t)
		}
	}
	s.swBuf = cand
	sort.Slice(cand, func(a, b int) bool {
		if s.est[cand[a]] != s.est[cand[b]] {
			return s.est[cand[a]] < s.est[cand[b]]
		}
		return cand[a] < cand[b]
	})
	mt := s.maxT()
	for _, t := range cand {
		if s.est[t] <= s.totalReconfTime() {
			continue
		}
		// Lowest-cost hardware implementation that fits some compatible
		// region.
		task := s.g.Tasks[t]
		bestImpl, bestCost := -1, 0.0
		var bestRegion *regionState
		var bestStart int64
		for _, i := range task.HWImpls() {
			im := task.Impls[i]
			c := s.implCost(im, mt)
			if bestImpl >= 0 && c >= bestCost {
				continue
			}
			reg, st := s.regionForImpl(t, im, im.Time, -1)
			if reg == nil {
				continue
			}
			// The move trades a software execution for a hardware one plus
			// a reconfiguration on the contended reconfigurator; take it
			// only when the task finishes earlier by more than that
			// reconfiguration, so the added ICAP load pays for itself.
			benefit := (s.est[t] + s.dur[t]) - (st + im.Time)
			if !s.strict && benefit <= reg.reconf {
				continue
			}
			bestImpl, bestCost, bestRegion, bestStart = i, c, reg, st
		}
		if bestImpl < 0 {
			continue
		}
		// Switching the implementation changes every window (the makespan
		// usually shrinks), so the compatibility decision must be
		// re-validated under fresh windows before sequencing edges are
		// inserted — stale windows could order the region inconsistently
		// with the dependency graph.
		prevImpl := s.impl[t]
		horizon := s.lft[t] // pre-switch window: the move can only improve on it
		s.setImpl(t, bestImpl)
		if err := s.retime(); err != nil {
			return err
		}
		im := s.g.Tasks[t].Impls[bestImpl]
		bestRegion, bestStart = s.regionForImpl(t, im, s.dur[t], horizon)
		if bestRegion == nil {
			s.setImpl(t, prevImpl)
			if err := s.retime(); err != nil {
				return err
			}
			continue
		}
		if err := s.placeInRegion(t, bestRegion, bestStart); err != nil {
			return err
		}
	}
	return nil
}

// regionForImpl finds the lowest-bitstream region that can host task t with
// implementation im (execution time dur), returning the insertion start.
// horizon optionally widens the insertion bound beyond t's current window.
func (s *state) regionForImpl(t int, im taskgraph.Implementation, dur int64, horizon int64) (*regionState, int64) {
	var best *regionState
	start := int64(-1)
	for _, r := range s.regions {
		if !im.Res.Fits(r.res) {
			continue
		}
		if !s.hostablePinned(r, t) {
			continue
		}
		var st int64
		if s.strict {
			if !s.windowsCompatible(r, t, false) {
				continue
			}
			st = s.est[t]
		} else {
			st = s.insertionStart(r, t, dur, true, horizon)
			if st < 0 {
				continue
			}
		}
		if best == nil || r.bits < best.bits {
			best, start = r, st
		}
	}
	return best, start
}
