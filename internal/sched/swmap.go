package sched

import (
	"fmt"
	"sort"
)

// mapSoftware runs phase 6 (§V-F): bind every software task to the
// processor generating the least delay λ_p (eq. (8)), chaining a sequencing
// edge behind the processor's previous task so the combined graph reflects
// processor exclusivity; delays propagate through the usual re-timing.
func (s *state) mapSoftware() error {
	sw := s.swBuf[:0]
	for t := 0; t < s.g.N(); t++ {
		if !s.isHW(t) {
			sw = append(sw, t)
		}
	}
	s.swBuf = sw
	if len(sw) > 0 && s.a.Processors == 0 {
		return fmt.Errorf("sched: %d software tasks but the architecture has no processors", len(sw))
	}
	// Chronological order by T_MIN (ties by ID).
	sort.Slice(sw, func(a, b int) bool {
		if s.est[sw[a]] != s.est[sw[b]] {
			return s.est[sw[a]] < s.est[sw[b]]
		}
		return sw[a] < sw[b]
	})
	if cap(s.procEndBuf) < s.a.Processors {
		s.procEndBuf = make([]int64, s.a.Processors)
		s.procLastBuf = make([]int, s.a.Processors)
	}
	procEnd := s.procEndBuf[:s.a.Processors]
	procLast := s.procLastBuf[:s.a.Processors]
	for p := range procLast {
		procEnd[p] = 0
		if s.warm != nil && p < len(s.warm.ProcAvail) {
			// Warm start: the processor finishes its committed work first.
			procEnd[p] = s.warm.ProcAvail[p]
		}
		procLast[p] = -1
	}
	for _, t := range sw {
		best, bestDelay := 0, int64(0)
		for p := 0; p < s.a.Processors; p++ {
			d := procEnd[p] - s.est[t]
			if d < 0 {
				d = 0
			}
			if p == 0 || d < bestDelay {
				best, bestDelay = p, d
			}
		}
		if procLast[best] >= 0 {
			s.addEdge(procLast[best], t)
			if err := s.retime(); err != nil {
				return err
			}
		} else if procEnd[best] > s.est[t] {
			// First tail task on a warm processor: no predecessor task to
			// chain behind, so impose the busy-until floor as a release.
			if err := s.delay(t, procEnd[best]); err != nil {
				return err
			}
		}
		s.procOf[t] = best
		procLast[best] = t
		procEnd[best] = s.end(t)
	}
	return nil
}
