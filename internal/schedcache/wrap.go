package schedcache

import (
	"time"

	"resched/internal/floorplan"
	"resched/internal/obs"
	"resched/internal/sched"
	"resched/internal/solve"
)

// Wrap decorates a solver with the cache: exact repeats return the stored
// result, near-misses warm-start the inner solver, everything else passes
// through untouched. A nil cache returns the solver unchanged. The
// decorator preserves the optional MaxTasks surface, mirroring the
// registry's observability wrapper.
func Wrap(s solve.Solver, c *Cache) solve.Solver {
	if c == nil {
		return s
	}
	cs := cachingSolver{inner: s, cache: c}
	if _, ok := s.(sizer); ok {
		return sizedCachingSolver{cs}
	}
	return cs
}

// Install makes every solver the registry's Get returns cache through c —
// the one-line wiring for CLI frontends (cmd/pasched -cache-entries,
// cmd/experiments). Long-lived dispatchers that own their cache (the
// serving tier) call Wrap directly instead and must not also Install, or
// requests would consult two caches. Install(nil) or Uninstall removes
// the hook.
func Install(c *Cache) {
	if c == nil {
		solve.SetWrapper(nil)
		return
	}
	solve.SetWrapper(func(s solve.Solver) solve.Solver { return Wrap(s, c) })
}

// Uninstall removes a previously Installed cache from the registry.
func Uninstall() { solve.SetWrapper(nil) }

// sizer is the optional instance-size ceiling some solvers expose.
type sizer interface{ MaxTasks() int }

type cachingSolver struct {
	inner solve.Solver
	cache *Cache
}

type sizedCachingSolver struct{ cachingSolver }

func (s sizedCachingSolver) MaxTasks() int { return s.inner.(sizer).MaxTasks() }

func (cs cachingSolver) Name() string { return cs.inner.Name() }

// Cacheable reports whether a request to the named solver is a pure
// function of its cache key and may therefore be served from or stored
// into the cache.
//
//   - pa, is1, is5, exact: always deterministic.
//   - par: deterministic exactly when iteration-bounded (MaxIterations > 0)
//     with no wall-clock budget — RSchedule is then a pure function of
//     (Seed, Workers, MaxIterations).
//   - robust: deterministic with no wall-clock budget (a zero
//     RandomIterations defaults to 32, keeping the PA-R rung bounded).
//   - anything else: unknown semantics, never cached.
//
// Requests with armed faults or caller-provided warm-start inputs are
// excluded separately in Solve: injected failures and external hints are
// not part of the key.
func Cacheable(name string, o *solve.Options) bool {
	switch name {
	case "pa", "is1", "is5", "exact":
		return true
	case "par":
		return o.TimeBudget == 0 && o.MaxIterations > 0
	case "robust":
		return o.TimeBudget == 0
	default:
		return false
	}
}

func (cs cachingSolver) Solve(req *solve.Request) (*solve.Result, error) {
	name := cs.inner.Name()
	if !Cacheable(name, &req.Options) ||
		len(req.Faults.Armed()) > 0 ||
		req.InitialIncumbent != nil || len(req.FloorplanHint) > 0 {
		return cs.inner.Solve(req)
	}
	begin := time.Now()
	keys := computeKeys(req, name)
	if res, ok := cs.cache.lookup(keys.full); ok {
		req.Trace.Count("cache.hits", 1)
		req.Trace.Observe("cache.lookup_us", float64(time.Since(begin).Nanoseconds())/1e3)
		out := cloneResult(res)
		out.Cache = "hit"
		return out, nil
	}
	req.Trace.Count("cache.misses", 1)
	// The similarity signature is only needed past this point (near-miss
	// probe and store), keeping the exact-hit path free of its cost.
	sig := signatureOf(req.Graph)

	// Warm-start probe. Only the solvers that consume a given warm input
	// receive it, so the request stays bit-identical for the rest.
	mode := "miss"
	creq := *req
	wantIncumbent := name == "par" || name == "robust"
	wantHint := name == "pa" || name == "robust"
	if ent, ok := cs.cache.sameInstance(keys.instance); ok {
		// Exact same instance solved before under other options: its
		// schedule is valid here, so it can seed the incumbent directly.
		if wantIncumbent {
			creq.InitialIncumbent = ent.res.Schedule.Clone()
			mode = "warm"
		}
		if wantHint && len(ent.res.Placements) > 0 {
			creq.FloorplanHint = append([]floorplan.Placement(nil), ent.res.Placements...)
			mode = "warm"
		}
	} else if wantHint {
		// Near-miss: a similar instance's schedule belongs to a different
		// graph and must not become an incumbent, but its floorplan is a
		// legitimate hint — phase 8 verifies it against this run's regions
		// before trusting it.
		if ent, delta, ok := cs.cache.nearest(keys.arch, sig); ok {
			creq.FloorplanHint = append([]floorplan.Placement(nil), ent.res.Placements...)
			mode = "warm"
			req.Trace.Event("cache.near_miss", obs.Int("delta", int64(delta)))
		}
	}
	if mode == "warm" {
		cs.cache.noteWarm()
		req.Trace.Count("cache.warm_starts", 1)
	}
	req.Trace.Observe("cache.lookup_us", float64(time.Since(begin).Nanoseconds())/1e3)

	res, err := cs.inner.Solve(&creq)
	if err != nil {
		return nil, err
	}
	// Store rule: a clean budget after a successful solve proves the
	// budget never influenced the run, so the result is a pure function of
	// the key (plus the warm context, which is itself a deterministic
	// function of the cache state — see DESIGN.md §16).
	if res.Schedule != nil && req.Budget.Check() == nil {
		stored := cloneResult(res)
		stored.Cache = ""
		cs.cache.store(&entry{
			key: keys.full, instance: keys.instance, arch: keys.arch,
			sig: sig, res: stored,
		})
		req.Trace.Count("cache.stores", 1)
	}
	res.Cache = mode
	return res, nil
}

// cloneResult deep-copies a result so cache-internal state and caller
// state never alias: the schedule (shared Graph/Arch pointers are
// immutable inputs), the placements and every optional stats block.
func cloneResult(r *solve.Result) *solve.Result {
	out := *r
	if r.Schedule != nil {
		out.Schedule = r.Schedule.Clone()
	}
	if r.Placements != nil {
		out.Placements = append([]floorplan.Placement(nil), r.Placements...)
	}
	if r.Search != nil {
		s := *r.Search
		s.History = append([]sched.ImprovementPoint(nil), r.Search.History...)
		out.Search = &s
	}
	if r.Window != nil {
		w := *r.Window
		out.Window = &w
	}
	if r.Exact != nil {
		e := *r.Exact
		out.Exact = &e
	}
	if r.Ladder != nil {
		l := *r.Ladder
		out.Ladder = &l
	}
	return &out
}
