package schedcache

import (
	"fmt"
	"slices"
	"strings"

	"resched/internal/taskgraph"
)

// Signature is the similarity fingerprint of a problem instance: one
// 64-bit hash per task (name plus every implementation field, in declared
// order — implementation indices are schedule-relevant) and one per edge
// (endpoint indices plus communication cost). Both slices are sorted, so
// the distance between two signatures is a multiset symmetric difference:
// perturbing one field of one task changes exactly one task hash (delta 2:
// old hash out, new hash in) plus nothing on the edge side, while
// inserting or removing a task renumbers indices and blows up the edge
// delta — which is what makes structural edits conservatively non-warm.
//
// Edge hashes use task *indices*, not task content hashes, precisely so a
// content perturbation does not cascade through every incident edge.
type Signature struct {
	tasks []uint64
	edges []uint64
}

// Size is the total multiset size, the scale the near-miss threshold is
// relative to.
func (s *Signature) Size() int { return len(s.tasks) + len(s.edges) }

// Delta is the multiset symmetric-difference distance between the two
// signatures: the number of hashes present in one but not the other,
// counting multiplicity.
func (s *Signature) Delta(o *Signature) int {
	return multisetDelta(s.tasks, o.tasks) + multisetDelta(s.edges, o.edges)
}

// multisetDelta merges two sorted slices and counts the unmatched
// elements on both sides.
func multisetDelta(a, b []uint64) int {
	i, j, d := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			i++
			d++
		default:
			j++
			d++
		}
	}
	return d + (len(a) - i) + (len(b) - j)
}

// signatureOf fingerprints the graph.
func signatureOf(g *taskgraph.Graph) *Signature {
	sig := &Signature{
		tasks: make([]uint64, 0, g.N()),
		edges: make([]uint64, 0, len(g.Edges())),
	}
	var b strings.Builder
	for _, t := range g.Tasks {
		b.Reset()
		b.WriteString("t|")
		b.WriteString(t.Name)
		for _, im := range t.Impls {
			fmt.Fprintf(&b, "|i|%s|%d|%d|%v", im.Name, int(im.Kind), im.Time, im.Res)
		}
		sig.tasks = append(sig.tasks, fnv64a(b.String()))
	}
	for _, e := range g.Edges() {
		b.Reset()
		fmt.Fprintf(&b, "e|%d|%d|%d", e[0], e[1], g.EdgeComm(e[0], e[1]))
		sig.edges = append(sig.edges, fnv64a(b.String()))
	}
	slices.Sort(sig.tasks)
	slices.Sort(sig.edges)
	return sig
}

// fnv64a is the 64-bit FNV-1a hash — cheap, allocation-free and stable
// across processes (unlike the runtime's seeded map hash).
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
