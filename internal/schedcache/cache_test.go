package schedcache

import (
	"fmt"
	"sync"
	"testing"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/floorplan"
	"resched/internal/schedule"
	"resched/internal/solve"
)

// testEntry fabricates a distinct cached result keyed by n.
func testEntry(tb testing.TB, n int) *entry {
	tb.Helper()
	g, err := benchgen.Generate(benchgen.Config{Tasks: 6, Seed: int64(100 + n)})
	if err != nil {
		tb.Fatal(err)
	}
	a := arch.ZedBoard()
	keys := computeKeys(&solve.Request{Graph: g, Arch: a}, "pa")
	sch := schedule.New(g, a)
	sch.Makespan = int64(1000 + n)
	return &entry{
		key: keys.full, instance: keys.instance, arch: keys.arch, sig: signatureOf(g),
		res: &solve.Result{Schedule: sch, Makespan: sch.Makespan},
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(2)
	e0, e1, e2 := testEntry(t, 0), testEntry(t, 1), testEntry(t, 2)
	c.store(e0)
	c.store(e1)
	// Touch e0 so e1 becomes the LRU victim.
	if _, ok := c.lookup(e0.key); !ok {
		t.Fatal("e0 should hit")
	}
	c.store(e2)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.lookup(e1.key); ok {
		t.Fatal("e1 should have been evicted (LRU)")
	}
	if _, ok := c.lookup(e0.key); !ok {
		t.Fatal("e0 should survive (recently used)")
	}
	if _, ok := c.lookup(e2.key); !ok {
		t.Fatal("e2 should be present")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Stores != 3 {
		t.Fatalf("stats = %+v, want 1 eviction / 3 stores", st)
	}
}

func TestCacheStoreReplacesInPlace(t *testing.T) {
	c := New(2)
	e := testEntry(t, 0)
	c.store(e)
	e2 := testEntry(t, 0)
	e2.res.Makespan = 7
	c.store(e2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after same-key re-store", c.Len())
	}
	res, ok := c.lookup(e.key)
	if !ok || res.Makespan != 7 {
		t.Fatalf("lookup = %v/%v, want replaced result", res, ok)
	}
}

func TestCacheDefaultCapacity(t *testing.T) {
	if c := New(0); c.capacity != defaultCapacity {
		t.Fatalf("New(0) capacity = %d, want %d", c.capacity, defaultCapacity)
	}
	if c := New(-5); c.capacity != defaultCapacity {
		t.Fatalf("New(-5) capacity = %d, want %d", c.capacity, defaultCapacity)
	}
}

// TestCacheConcurrentHammer drives every cache operation from many
// goroutines over a capacity small enough to force constant eviction; run
// under -race (make verify does) it proves the locking discipline.
func TestCacheConcurrentHammer(t *testing.T) {
	c := New(8)
	entries := make([]*entry, 32)
	for i := range entries {
		entries[i] = testEntry(t, i)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e := entries[(w*31+i)%len(entries)]
				switch i % 4 {
				case 0:
					c.store(e)
				case 1:
					c.lookup(e.key)
				case 2:
					c.sameInstance(e.instance)
				default:
					c.nearest(e.arch, e.sig)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := c.Len(); n > 8 {
		t.Fatalf("Len = %d, want ≤ capacity 8", n)
	}
	st := c.Stats()
	if st.Stores == 0 || st.Hits+st.Misses == 0 {
		t.Fatalf("hammer recorded no activity: %+v", st)
	}
}

// TestSameInstancePicksBestMakespan: among entries of one instance the
// probe must return the lowest makespan, independent of insertion or
// recency order.
func TestSameInstancePicksBestMakespan(t *testing.T) {
	c := New(8)
	g, err := benchgen.Generate(benchgen.Config{Tasks: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.ZedBoard()
	mk := func(solver string, makespan int64) *entry {
		req := &solve.Request{Graph: g, Arch: a}
		req.Seed = makespan // move the par key per entry
		req.MaxIterations = 4
		keys := computeKeys(req, solver)
		sch := schedule.New(g, a)
		sch.Makespan = makespan
		return &entry{key: keys.full, instance: keys.instance, arch: keys.arch,
			sig: signatureOf(g), res: &solve.Result{Schedule: sch, Makespan: makespan}}
	}
	c.store(mk("par", 300))
	c.store(mk("par", 100))
	c.store(mk("par", 200))
	ent, ok := c.sameInstance(mk("par", 999).instance)
	if !ok || ent.res.Schedule.Makespan != 100 {
		t.Fatalf("sameInstance = %v (ok=%v), want makespan 100", ent, ok)
	}
}

// TestNearestRespectsThreshold: a structurally different graph must not
// be offered as a warm-start neighbor.
func TestNearestRespectsThreshold(t *testing.T) {
	c := New(8)
	base := testEntry(t, 0)
	// Give it a placement so it qualifies as a hint donor.
	base.res.Placements = []floorplan.Placement{{X0: 0, X1: 1, Y0: 0, Y1: 1}}
	c.store(base)
	far := testEntry(t, 9) // different seed ⇒ unrelated graph
	if _, _, ok := c.nearest(far.arch, far.sig); ok {
		t.Fatal("nearest matched an unrelated graph")
	}
}

func TestStatsSnapshot(t *testing.T) {
	c := New(4)
	e := testEntry(t, 0)
	c.lookup(e.key) // miss
	c.store(e)
	c.lookup(e.key) // hit
	c.noteWarm()
	st := c.Stats()
	want := Stats{Entries: 1, Hits: 1, Misses: 1, WarmStarts: 1, Stores: 1}
	if st != want {
		t.Fatalf("Stats = %+v, want %+v", st, want)
	}
	_ = fmt.Sprintf("%+v", st) // Stats must stay printable for debug surfaces
}
