package schedcache

import (
	"reflect"
	"testing"
	"time"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/solve"
)

// testRequest builds a cacheable request for the named solver over a
// fresh copy of the standard test instance.
func testRequest(tb testing.TB, solver string, tasks int) *solve.Request {
	tb.Helper()
	g, err := benchgen.Generate(benchgen.Config{Tasks: tasks, Seed: 11})
	if err != nil {
		tb.Fatal(err)
	}
	req := &solve.Request{Graph: g, Arch: arch.ZedBoard()}
	switch solver {
	case "par":
		req.Seed, req.Workers, req.MaxIterations = 1, 1, 6
	case "robust":
		req.Seed = 1
	case "exact":
		req.MaxNodes = 200000
	}
	return req
}

// TestCachedEqualsFresh is the central determinism gate: for every
// cacheable solver, the result served from the cache must be bit-identical
// to a fresh solve of the same request — same schedule, same makespan,
// same placements — and the Cache tags must read miss-then-hit.
func TestCachedEqualsFresh(t *testing.T) {
	for _, tc := range []struct {
		solver string
		tasks  int
	}{
		{"pa", 20}, {"par", 20}, {"robust", 20}, {"is1", 10}, {"exact", 6},
	} {
		t.Run(tc.solver, func(t *testing.T) {
			inner, err := solve.Get(tc.solver)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := inner.Solve(testRequest(t, tc.solver, tc.tasks))
			if err != nil {
				t.Fatal(err)
			}

			cached := Wrap(inner, New(16))
			first, err := cached.Solve(testRequest(t, tc.solver, tc.tasks))
			if err != nil {
				t.Fatal(err)
			}
			if first.Cache != "miss" {
				t.Fatalf("first solve Cache = %q, want miss", first.Cache)
			}
			second, err := cached.Solve(testRequest(t, tc.solver, tc.tasks))
			if err != nil {
				t.Fatal(err)
			}
			if second.Cache != "hit" {
				t.Fatalf("second solve Cache = %q, want hit", second.Cache)
			}
			for name, res := range map[string]*solve.Result{"miss": first, "hit": second} {
				if res.Makespan != fresh.Makespan {
					t.Errorf("%s makespan = %d, fresh = %d", name, res.Makespan, fresh.Makespan)
				}
				if !reflect.DeepEqual(res.Schedule.Tasks, fresh.Schedule.Tasks) {
					t.Errorf("%s schedule tasks differ from fresh", name)
				}
				if !reflect.DeepEqual(res.Schedule.Regions, fresh.Schedule.Regions) {
					t.Errorf("%s schedule regions differ from fresh", name)
				}
				if !reflect.DeepEqual(res.Placements, fresh.Placements) {
					t.Errorf("%s placements differ from fresh", name)
				}
			}
		})
	}
}

// TestHitIsolation: mutating a result handed out by the cache must not
// corrupt the stored entry — the next hit sees the original.
func TestHitIsolation(t *testing.T) {
	inner, err := solve.Get("pa")
	if err != nil {
		t.Fatal(err)
	}
	cached := Wrap(inner, New(16))
	if _, err := cached.Solve(testRequest(t, "pa", 20)); err != nil {
		t.Fatal(err)
	}
	first, err := cached.Solve(testRequest(t, "pa", 20))
	if err != nil {
		t.Fatal(err)
	}
	want := first.Schedule.Tasks[0]
	first.Makespan = -1
	first.Schedule.Tasks[0].Start = -99
	if len(first.Placements) > 0 {
		first.Placements[0].X1 = -1
	}
	second, err := cached.Solve(testRequest(t, "pa", 20))
	if err != nil {
		t.Fatal(err)
	}
	if second.Cache != "hit" {
		t.Fatalf("Cache = %q, want hit", second.Cache)
	}
	if second.Makespan == -1 || second.Schedule.Tasks[0] != want {
		t.Fatal("mutating a served result leaked into the cache")
	}
}

// TestWarmStartDeterminism: warm-started solves must be reproducible —
// two runs against identically-primed fresh caches produce identical
// results — and the warm path must actually fire (Cache == "warm").
func TestWarmStartDeterminism(t *testing.T) {
	pa, err := solve.Get("pa")
	if err != nil {
		t.Fatal(err)
	}
	par, err := solve.Get("par")
	if err != nil {
		t.Fatal(err)
	}
	run := func() *solve.Result {
		c := New(16)
		// Prime with PA on the instance, then solve PA-R over the same
		// instance: the sameInstance probe seeds the incumbent.
		if _, err := Wrap(pa, c).Solve(testRequest(t, "pa", 20)); err != nil {
			t.Fatal(err)
		}
		res, err := Wrap(par, c).Solve(testRequest(t, "par", 20))
		if err != nil {
			t.Fatal(err)
		}
		if res.Cache != "warm" {
			t.Fatalf("Cache = %q, want warm", res.Cache)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan {
		t.Fatalf("warm double-run makespans differ: %d vs %d", a.Makespan, b.Makespan)
	}
	if !reflect.DeepEqual(a.Schedule.Tasks, b.Schedule.Tasks) {
		t.Fatal("warm double-run schedules differ")
	}
	// The incumbent came from PA, so the warm PA-R result can never be
	// worse than the primed schedule.
	prime, err := pa.Solve(testRequest(t, "pa", 20))
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan > prime.Makespan {
		t.Fatalf("warm PA-R makespan %d worse than its incumbent %d", a.Makespan, prime.Makespan)
	}
}

// TestNearMissWarmStart: perturbing one implementation time keeps the
// solve on the warm path via the similarity probe, and the warm-started
// result still equals a fresh solve of the perturbed instance (the hint
// can only replace the floorplan search, never change the schedule).
func TestNearMissWarmStart(t *testing.T) {
	inner, err := solve.Get("pa")
	if err != nil {
		t.Fatal(err)
	}
	c := New(16)
	cached := Wrap(inner, c)
	if _, err := cached.Solve(testRequest(t, "pa", 20)); err != nil {
		t.Fatal(err)
	}

	perturb := func() *solve.Request {
		req := testRequest(t, "pa", 20)
		req.Graph.Tasks[2].Impls[0].Time += 2
		return req
	}
	fresh, err := inner.Solve(perturb())
	if err != nil {
		t.Fatal(err)
	}
	warm, err := cached.Solve(perturb())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache != "warm" {
		t.Fatalf("Cache = %q, want warm (near-miss)", warm.Cache)
	}
	if warm.Makespan != fresh.Makespan {
		t.Fatalf("warm makespan = %d, fresh = %d", warm.Makespan, fresh.Makespan)
	}
	if !reflect.DeepEqual(warm.Schedule.Tasks, fresh.Schedule.Tasks) {
		t.Fatal("near-miss warm schedule differs from fresh")
	}
	if c.Stats().WarmStarts == 0 {
		t.Fatal("warm-start counter did not advance")
	}
}

// TestBypasses: requests the cache must not touch pass straight through
// with no Cache tag and no stored entry.
func TestBypasses(t *testing.T) {
	inner, err := solve.Get("par")
	if err != nil {
		t.Fatal(err)
	}
	c := New(16)
	cached := Wrap(inner, c)

	// A wall-clock-budgeted PA-R is not a pure function of its options —
	// bypass even though the request is otherwise valid.
	req := testRequest(t, "par", 10)
	req.TimeBudget = time.Second
	res, err := cached.Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "" {
		t.Fatalf("uncacheable request got Cache = %q", res.Cache)
	}
	if c.Len() != 0 {
		t.Fatalf("uncacheable request stored %d entries", c.Len())
	}
}

// TestWrapPreservesMaxTasks: the decorator must keep the optional
// instance-size surface visible, as the registry's own wrapper does.
func TestWrapPreservesMaxTasks(t *testing.T) {
	inner, err := solve.Get("exact")
	if err != nil {
		t.Fatal(err)
	}
	limited, ok := inner.(interface{ MaxTasks() int })
	if !ok {
		t.Fatal("exact solver lost MaxTasks before wrapping")
	}
	wrapped, ok := Wrap(inner, New(4)).(interface{ MaxTasks() int })
	if !ok {
		t.Fatal("caching wrapper dropped MaxTasks")
	}
	if wrapped.MaxTasks() != limited.MaxTasks() {
		t.Fatal("MaxTasks value changed through the wrapper")
	}
}

// TestInstallWiresRegistry: Install must make registry lookups cache, and
// Uninstall must restore pass-through.
func TestInstallWiresRegistry(t *testing.T) {
	c := New(16)
	Install(c)
	defer Uninstall()
	s, err := solve.Get("pa")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(testRequest(t, "pa", 10)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(testRequest(t, "pa", 10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "hit" {
		t.Fatalf("Cache = %q through Install, want hit", res.Cache)
	}
	Uninstall()
	s, err = solve.Get("pa")
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.Solve(testRequest(t, "pa", 10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "" {
		t.Fatalf("Cache = %q after Uninstall, want empty", res.Cache)
	}
}
