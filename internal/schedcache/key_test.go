package schedcache

import (
	"testing"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/solve"
)

// goldenRequest is the fixed instance behind the golden key vectors:
// suite-style graph (10 tasks, seed 42) on the ZedBoard architecture.
func goldenRequest(tb testing.TB) *solve.Request {
	tb.Helper()
	g, err := benchgen.Generate(benchgen.Config{Tasks: 10, Seed: 42})
	if err != nil {
		tb.Fatal(err)
	}
	return &solve.Request{Graph: g, Arch: arch.ZedBoard()}
}

// TestKeyGoldenVectors pins the canonical key format: if any of these hex
// digests change, the canonical encoding changed and keyVersion must be
// bumped (and these vectors re-pinned) in the same commit. Only solvers
// whose key is machine-independent are pinned; par with Workers=0 and
// robust fold in GOMAXPROCS and are covered by the stability test below.
func TestKeyGoldenVectors(t *testing.T) {
	cases := []struct {
		name   string
		solver string
		mut    func(*solve.Options)
		want   string
	}{
		{
			name: "pa-defaults", solver: "pa", mut: func(o *solve.Options) {},
			want: "7ec744802a631bfa780269ec16d86e5fbbf8dc5c7ef3c4b206a4bf593babaca8",
		},
		{
			name: "pa-reuse", solver: "pa",
			mut:  func(o *solve.Options) { o.ModuleReuse = true },
			want: "65f31a70b4e7952972f285d9c4d2029e704f457e3b55334affb20508021a59d9",
		},
		{
			name: "par-explicit-workers", solver: "par",
			mut: func(o *solve.Options) {
				o.Seed = 3
				o.Workers = 2
				o.MaxIterations = 8
			},
			want: "11100035c5308b0fc4082848b640eadd0c7701add49c56194887dd1f76e67a4d",
		},
		{
			name: "is5", solver: "is5",
			mut:  func(o *solve.Options) { o.MaxNodes = 1000 },
			want: "43957af9657fa3916e3e6a1ddb881b5eea9b6cdc70ed50d96218040f39e4fa40",
		},
		{
			name: "exact", solver: "exact",
			mut:  func(o *solve.Options) { o.MaxNodes = 5000 },
			want: "28cf7e3888fe3df513b523679d91b3093b9b3441f34178e744499d5c459caaad",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := goldenRequest(t)
			tc.mut(&req.Options)
			got := Key(req, tc.solver)
			if got != tc.want {
				t.Fatalf("key drifted:\n got %s\nwant %s", got, tc.want)
			}
		})
	}
}

// TestKeyIgnoresUnreadOptions: options a solver never reads must not move
// its key — that is what lets, e.g., every PA request share one entry
// regardless of seed.
func TestKeyIgnoresUnreadOptions(t *testing.T) {
	req := goldenRequest(t)
	base := Key(req, "pa")
	req.Seed = 99
	req.Workers = 7
	req.MaxIterations = 1000
	req.MaxNodes = 123
	got := Key(req, "pa")
	if got != base {
		t.Fatalf("pa key moved on unread options: %s vs %s", got, base)
	}
}

// TestKeySensitivity: fields a solver does read must move its key.
func TestKeySensitivity(t *testing.T) {
	req := goldenRequest(t)
	req.Seed, req.Workers, req.MaxIterations = 3, 2, 8
	base := Key(req, "par")
	for name, mut := range map[string]func(*solve.Request){
		"seed":    func(r *solve.Request) { r.Seed = 4 },
		"workers": func(r *solve.Request) { r.Workers = 3 },
		"maxiter": func(r *solve.Request) { r.MaxIterations = 9 },
		"reuse":   func(r *solve.Request) { r.ModuleReuse = true },
		"graph":   func(r *solve.Request) { r.Graph.Tasks[0].Impls[0].Time++ },
		"arch":    func(r *solve.Request) { r.Arch.Processors++ },
		"solver":  func(r *solve.Request) {},
	} {
		r := goldenRequest(t)
		r.Seed, r.Workers, r.MaxIterations = 3, 2, 8
		mut(r)
		solver := "par"
		if name == "solver" {
			solver = "robust"
		}
		got := Key(r, solver)
		if got == base {
			t.Errorf("%s: key did not move", name)
		}
	}
}

// TestKeyStableWithinProcess: machine-dependent keys (robust folds in
// GOMAXPROCS) must still be deterministic within one process.
func TestKeyStableWithinProcess(t *testing.T) {
	req := goldenRequest(t)
	a := Key(req, "robust")
	b := Key(goldenRequest(t), "robust")
	if a != b {
		t.Fatalf("robust key unstable: %s vs %s", a, b)
	}
}

// TestSignatureDelta pins the similarity semantics the warm-start
// threshold relies on: a single-field perturbation costs exactly 2, a
// structural edit costs much more, and delta is symmetric.
func TestSignatureDelta(t *testing.T) {
	g, err := benchgen.Generate(benchgen.Config{Tasks: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	base := signatureOf(g)
	if d := base.Delta(base); d != 0 {
		t.Fatalf("self delta = %d, want 0", d)
	}

	perturbed := g.Clone()
	perturbed.Tasks[3].Impls[0].Time += 2
	psig := signatureOf(perturbed)
	if d := base.Delta(psig); d != 2 {
		t.Fatalf("one-field perturbation delta = %d, want 2", d)
	}
	if d := psig.Delta(base); d != 2 {
		t.Fatalf("delta not symmetric: %d", d)
	}

	smaller, err := benchgen.Generate(benchgen.Config{Tasks: 19, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ssig := signatureOf(smaller)
	limit := New(1).threshold(base.Size())
	if d := base.Delta(ssig); d <= limit {
		t.Fatalf("structural edit delta = %d, want > threshold %d", d, limit)
	}
}
