// Package schedcache is the content-addressed schedule cache: a
// concurrency-safe, size-bounded LRU keyed on a canonical digest of the
// solve request (task graph, architecture, solver name and the solver
// options that influence its output). An identical request returns the
// stored solve.Result in O(hash) without running the solver; a near-miss —
// a request whose instance differs from a cached neighbor by a small
// task/edge delta — warm-starts a fresh solve by reusing the cached
// floorplan as PA's phase-8 starting point and seeding PA-R's incumbent
// with the cached schedule.
//
// Soundness rests on two properties. First, every cacheable solver is a
// pure function of its key: the key encodes exactly the option subset the
// solver reads (key.go), requests with armed fault injectors or external
// warm-start inputs bypass the cache, and results are stored only when the
// request's budget never fired (post-solve Budget.Check() == nil — a clean
// budget after a successful solve proves the budget could not have
// influenced the run). Second, warm starts never change feasibility
// semantics: a floorplan hint is verified against the run's regions before
// use and discarded otherwise, and an initial incumbent only raises the
// improvement bar of a search over the *same* instance — both leave the
// solver a pure function of (request, warm context).
//
// Results cross the cache boundary by deep copy in both directions
// (cloneResult), so callers can mutate what they receive and cached
// entries never leak solver-internal state; in particular nothing
// arena-backed is ever stored (the arenaescape invariant: solver results
// are already arena-free, and the cache clones even those).
package schedcache

import (
	"container/list"
	"sync"

	"resched/internal/solve"
)

// defaultCapacity bounds the cache when the caller passes no size.
const defaultCapacity = 256

// Cache is the LRU store. The zero value is not usable; construct with New.
// All methods are safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	// warmDelta overrides the near-miss similarity threshold when > 0;
	// 0 selects the size-relative default (see threshold).
	warmDelta int
	entries   map[Digest]*list.Element
	order     *list.List // front = most recently used; values are *entry

	hits, misses, warm, stores, evictions int64
}

// entry is one cached solve keyed by its full digest, carrying the
// instance and architecture digests plus the similarity signature the
// warm-start probes match against.
type entry struct {
	key      Digest
	instance Digest
	arch     Digest
	sig      *Signature
	res      *solve.Result // private clone; never handed out directly
}

// New builds a cache bounded to capacity entries (≤ 0 selects the default
// of 256).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = defaultCapacity
	}
	return &Cache{
		capacity: capacity,
		entries:  make(map[Digest]*list.Element),
		order:    list.New(),
	}
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Entries    int
	Hits       int64
	Misses     int64
	WarmStarts int64
	Stores     int64
	Evictions  int64
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:    c.order.Len(),
		Hits:       c.hits,
		Misses:     c.misses,
		WarmStarts: c.warm,
		Stores:     c.stores,
		Evictions:  c.evictions,
	}
}

// threshold is the near-miss acceptance bound for a request of the given
// signature size: at most max(2, size/10) multiset edits — tight enough
// that a hint from the neighbor still has a real chance to verify, loose
// enough to catch single-task perturbations on small graphs (delta 2: one
// hash out, one in).
func (c *Cache) threshold(size int) int {
	if c.warmDelta > 0 {
		return c.warmDelta
	}
	t := size / 10
	if t < 2 {
		t = 2
	}
	return t
}

// lookup returns the entry stored under the full key, bumping its recency.
// It bumps the hit counter on success and the miss counter otherwise, so
// the Stats ratios match the decorator's observed behavior exactly.
func (c *Cache) lookup(key Digest) (*solve.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*entry).res, true
}

// store inserts (or replaces) the entry and evicts from the LRU tail past
// capacity.
func (c *Cache) store(e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stores++
	if el, ok := c.entries[e.key]; ok {
		el.Value = e
		c.order.MoveToFront(el)
		return
	}
	c.entries[e.key] = c.order.PushFront(e)
	for c.order.Len() > c.capacity {
		back := c.order.Back()
		old := back.Value.(*entry)
		c.order.Remove(back)
		delete(c.entries, old.key)
		c.evictions++
	}
}

// noteWarm records that a lookup led to a warm start.
func (c *Cache) noteWarm() {
	c.mu.Lock()
	c.warm++
	c.mu.Unlock()
}

// sameInstance finds a cached solve of the exact same instance (graph,
// architecture and instance-shaping options equal) produced under a
// different full key — a different solver or different search options.
// Among candidates it picks the lowest makespan, breaking ties by key hex,
// so the choice is independent of LRU recency order and therefore of
// request interleaving. The entries list, not the map, is scanned: the
// scan order never influences the result, but iterating the container
// keeps the selection logic obviously order-free.
func (c *Cache) sameInstance(instance Digest) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *entry
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if e.instance != instance || e.res.Schedule == nil {
			continue
		}
		if best == nil ||
			e.res.Schedule.Makespan < best.res.Schedule.Makespan ||
			(e.res.Schedule.Makespan == best.res.Schedule.Makespan &&
				e.key.String() < best.key.String()) {
			best = e
		}
	}
	return best, best != nil
}

// nearest finds the most similar cached solve on the same architecture
// that carries a floorplan (hints are all a near-miss can soundly reuse).
// Distance is the multiset task/edge signature delta; candidates above the
// threshold are rejected. Ties break by key hex for the same
// interleaving-independence as sameInstance.
func (c *Cache) nearest(arch Digest, sig *Signature) (*entry, int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	limit := c.threshold(sig.Size())
	var best *entry
	bestDelta := 0
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if e.arch != arch || len(e.res.Placements) == 0 || e.sig == nil {
			continue
		}
		d := sig.Delta(e.sig)
		if d > limit {
			continue
		}
		if best == nil || d < bestDelta ||
			(d == bestDelta && e.key.String() < best.key.String()) {
			best, bestDelta = e, d
		}
	}
	if best == nil {
		return nil, 0, false
	}
	return best, bestDelta, true
}
