package schedcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"runtime"
	"sort"
	"sync"

	"resched/internal/arch"
	"resched/internal/solve"
	"resched/internal/taskgraph"
)

// Digest is a canonical-content hash. The full-request digest is the
// cache key; the instance digest groups entries solving the same problem
// instance under different solvers or search options; the architecture
// digest scopes near-miss probes to one device.
type Digest [sha256.Size]byte

// String renders the digest as lowercase hex — the form the golden key
// vectors pin.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Key versioning: bump these when the canonical encoding changes in any
// way, so stale processes never exchange keys across incompatible formats
// (today the cache is in-process only, but the digest format is part of
// the wire-visible behavior via the golden vectors). v2 replaced the
// taskgraph-JSON graph encoding with the direct field stream below: the
// exact-hit path must stay O(hash), and reflective JSON encoding was the
// dominant cost of v1 lookups.
const (
	keyVersion      = "schedcache/v2"
	instanceVersion = "schedcache/v2-instance"
	archVersion     = "schedcache/v2-arch"
	graphVersion    = "schedcache/v2-graph"
)

// cacheKeys bundles everything one canonicalization pass produces. The
// similarity signature is deliberately absent: exact hits never need it,
// so the decorator computes it lazily on a miss (signatureOf).
type cacheKeys struct {
	full     Digest
	instance Digest
	arch     Digest
}

// Key returns the hex full-request digest for (req, solver) — the exact
// key the cache stores under. Exported for the golden-vector tests and
// the key-cost benchmark; the decorator uses the richer computeKeys.
func Key(req *solve.Request, solver string) string {
	return computeKeys(req, solver).full.String()
}

// canon accumulates the canonical byte stream hand-rolled: zigzag-varint
// integers and '|'-terminated strings instead of fmt/json, because this
// runs on every cache lookup and both reflective encoding (v1) and the
// hash over a bloated stream were measured as the bulk of the hit cost —
// varints keep the SHA-256 input small, which is where the remaining
// time goes. Strings carry the separator so adjacent fields can never
// re-associate ("ab","c" vs "a","bc"); varints are self-delimiting.
type canon struct {
	buf []byte
	// succ is the per-source scratch for edge sorting in graphDigest.
	succ []int
}

// canonPool recycles scratch buffers across lookups: key computation runs
// on every cache access, and without reuse the buffer growth (memmove +
// mallocgc) costs more than the hashing itself on small graphs.
var canonPool = sync.Pool{
	New: func() any { return &canon{buf: make([]byte, 0, 8192), succ: make([]int, 0, 64)} },
}

func (c *canon) reset() { c.buf = c.buf[:0] }

func (c *canon) str(s string) {
	c.buf = append(c.buf, s...)
	c.buf = append(c.buf, '|')
}

func (c *canon) int(v int64) {
	c.buf = binary.AppendVarint(c.buf, v)
}

func (c *canon) sum() Digest { return sha256.Sum256(c.buf) }

// computeKeys canonicalizes the request once: a graph digest over the
// declared task/implementation/edge fields (tasks in ID order, edges
// sorted — the same ordering taskgraph's JSON serialization pins), a
// fixed-field architecture digest, and one field per option the named
// solver actually reads. Options a solver ignores are deliberately
// excluded so, e.g., two PA requests differing only in Seed share one
// entry.
func computeKeys(req *solve.Request, solver string) cacheKeys {
	c := canonPool.Get().(*canon)
	defer canonPool.Put(c)
	gd := graphDigest(c, req.Graph)
	ad := archDigest(c, req.Arch)
	o := &req.Options

	c.reset()
	c.str(keyVersion)
	c.str(solver)
	c.buf = append(c.buf, gd[:]...)
	c.buf = append(c.buf, ad[:]...)
	c.int(b2i(o.ModuleReuse))
	fp := func() {
		c.int(int64(o.Floorplan.Method))
		c.int(int64(o.Floorplan.MaxCandidates))
		c.int(int64(o.Floorplan.MaxNodes))
	}
	switch solver {
	case "pa":
		c.int(b2i(o.SkipFloorplan))
		fp()
	case "par":
		// Workers shapes the per-worker RNG streams, so the resolved value
		// (0 = GOMAXPROCS) is part of the identity; the golden vectors only
		// pin explicit-Workers keys for that reason.
		fp()
		c.int(o.Seed)
		c.int(int64(resolvedWorkers(o.Workers)))
		c.int(int64(o.MaxIterations))
	case "is1", "is5":
		c.int(b2i(o.SkipFloorplan))
		fp()
		c.int(int64(o.MaxNodes))
	case "exact":
		c.int(int64(o.MaxNodes))
	case "robust":
		// The ladder's PA-R rung never forwards Workers, so it always runs
		// at GOMAXPROCS — encode that, not the unread Workers field.
		fp()
		c.int(o.Seed)
		c.int(int64(runtime.GOMAXPROCS(0)))
		c.int(int64(o.MaxIterations))
	default:
		// Unknown solver: assume it reads everything. Cacheable rejects
		// unknown names, so this arm only matters if the roster grows
		// without a key mask — conservative by construction.
		c.int(b2i(o.SkipFloorplan))
		fp()
		c.int(o.Seed)
		c.int(int64(o.Workers))
		c.int(int64(runtime.GOMAXPROCS(0)))
		c.int(int64(o.MaxIterations))
		c.int(int64(o.MaxNodes))
		c.int(int64(o.TimeBudget))
	}
	full := c.sum()

	c.reset()
	c.str(instanceVersion)
	c.buf = append(c.buf, gd[:]...)
	c.buf = append(c.buf, ad[:]...)
	c.int(b2i(o.ModuleReuse))
	c.int(b2i(o.SkipFloorplan))
	fp()
	instance := c.sum()

	return cacheKeys{full: full, instance: instance, arch: ad}
}

// graphDigest streams every schedule-relevant graph field: tasks in ID
// order with their implementations in declared order, then the edges in
// the sorted order taskgraph.Edges pins (per-source sorted targets here,
// which is the same total order without materializing the edge list).
func graphDigest(c *canon, g *taskgraph.Graph) Digest {
	c.reset()
	c.str(graphVersion)
	c.str(g.Name)
	c.int(int64(len(g.Tasks)))
	for _, t := range g.Tasks {
		c.str(t.Name)
		c.int(int64(len(t.Impls)))
		for i := range t.Impls {
			im := &t.Impls[i]
			c.str(im.Name)
			c.int(int64(im.Kind))
			c.int(im.Time)
			for _, r := range im.Res {
				c.int(int64(r))
			}
		}
	}
	for from := range g.Tasks {
		succ := append(c.succ[:0], g.Succ(from)...)
		sort.Ints(succ)
		c.succ = succ[:0]
		for _, to := range succ {
			c.int(int64(from))
			c.int(int64(to))
			c.int(g.EdgeComm(from, to))
		}
	}
	return c.sum()
}

// archDigest streams every schedule-relevant architecture field.
func archDigest(c *canon, a *arch.Architecture) Digest {
	c.reset()
	c.str(archVersion)
	c.str(a.Name)
	c.int(int64(a.Processors))
	c.int(int64(a.Reconfigurators))
	c.int(int64(a.RecFreq))
	for _, b := range a.Bits {
		c.int(b)
	}
	for _, r := range a.MaxRes {
		c.int(int64(r))
	}
	if f := a.Fabric; f != nil {
		c.int(int64(f.Rows))
		c.int(int64(len(f.Columns)))
		for _, k := range f.Columns {
			c.int(int64(k))
		}
		for _, u := range f.UnitsPerCell {
			c.int(int64(u))
		}
	} else {
		c.str("nofabric")
	}
	return c.sum()
}

// b2i canonicalizes a bool into the stream.
func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// resolvedWorkers mirrors RSchedule's resolution: 0 means GOMAXPROCS.
// Negative values are rejected by the solver itself; they pass through so
// the (errored, never stored) request still hashes deterministically.
func resolvedWorkers(w int) int {
	if w == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}
