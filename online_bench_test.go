package repro

import (
	"fmt"
	"testing"

	"resched/internal/arch"
	"resched/internal/online"
)

// onlineTrace is the fixed benchmark trace config: enough jobs and
// communication that epochs genuinely interleave frozen prefixes with
// re-planned tails, small enough that one epoch is the dominant cost.
func onlineTrace(jobs, tasks int) online.TraceConfig {
	return online.TraceConfig{
		Jobs:        jobs,
		TasksPerJob: tasks,
		Seed:        2016,
		MeanGap:     800,
		CommMax:     30,
	}
}

// BenchmarkOnlineEpoch measures the per-epoch re-plan cost: each iteration
// runs one full rolling-horizon pass (submit all jobs, re-plan at every
// arrival boundary) and reports the amortized cost per epoch — the figure
// that bounds how often a deployment can afford to re-plan.
func BenchmarkOnlineEpoch(b *testing.B) {
	a, err := arch.Preset("zedboard")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := online.GenTrace(onlineTrace(5, 10))
	if err != nil {
		b.Fatal(err)
	}
	epochs := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := online.New(online.Config{Arch: a, Solver: "pa", Seed: 2016})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.SubmitTrace(tr); err != nil {
			b.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		epochs += len(eng.Epochs())
	}
	b.StopTimer()
	if epochs == 0 {
		b.Fatal("no epochs ran")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(epochs), "ns/epoch")
}

// BenchmarkOnlineTraceThroughput measures whole-trace turnaround across
// trace sizes: submit, re-plan at every boundary, finalize. This is the
// end-to-end latency a session-mode client observes.
func BenchmarkOnlineTraceThroughput(b *testing.B) {
	a, err := arch.Preset("zedboard")
	if err != nil {
		b.Fatal(err)
	}
	for _, jobs := range []int{4, 8} {
		tr, err := online.GenTrace(onlineTrace(jobs, 10))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng, err := online.New(online.Config{Arch: a, Solver: "pa", Seed: 2016})
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.SubmitTrace(tr); err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Finalize(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOnlineNoPrefetchRetime isolates the issue-at-dispatch baseline
// rewrite (the event simulation behind -no-prefetch and the per-epoch stall
// accounting's counterfactual).
func BenchmarkOnlineNoPrefetchRetime(b *testing.B) {
	a, err := arch.Preset("zedboard")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := online.GenTrace(onlineTrace(5, 10))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		eng, err := online.New(online.Config{Arch: a, Solver: "pa", Seed: 2016, DisablePrefetch: true})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.SubmitTrace(tr); err != nil {
			b.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
