package repro

import (
	"reflect"
	"testing"
	"time"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/schedule"
	"resched/internal/solve"
)

// TestRegistryDeterminism is the behavioural counterpart of the reschedvet
// static checks, driven off the solver registry so every algorithm the repo
// ships — present and future — is covered without editing this test: each
// registered solver is run twice on the same graph and the two solve.Results
// must be deeply equal once wall-clock readings are zeroed. PA and the
// baselines are deterministic by construction and PA-R is seeded (with an
// iteration cap, not a time budget, so the workload itself is fixed); the
// IS-k comparisons and the convergence experiments of EXPERIMENTS.md are
// meaningless without this property.
func TestRegistryDeterminism(t *testing.T) {
	a := arch.ZedBoard()
	big := genGraph(t, benchgen.Config{Tasks: 50, Seed: 424242})

	for _, name := range solve.List() {
		t.Run(name, func(t *testing.T) {
			solver, err := solve.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			// Solvers that advertise an instance-size ceiling (the
			// exhaustive reference) get a graph they accept.
			g := big
			if m, ok := solver.(interface{ MaxTasks() int }); ok && len(big.Tasks) > m.MaxTasks() {
				g = genGraph(t, benchgen.Config{Tasks: m.MaxTasks() - 2, Seed: 424242})
			}
			run := func() *solve.Result {
				t.Helper()
				r, err := solver.Solve(&solve.Request{
					Graph: g,
					Arch:  a,
					// An iteration cap (not a wall-clock budget) and a
					// single worker keep the randomized search identical
					// across the two runs.
					Options: solve.Options{Seed: 7, MaxIterations: 40, Workers: 1},
				})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if errs := schedule.Check(r.Schedule); len(errs) > 0 {
					t.Fatalf("%s produced an invalid schedule: %v", name, errs[0])
				}
				scrubDurations(r)
				return r
			}
			r1, r2 := run(), run()
			if !reflect.DeepEqual(r1.Schedule, r2.Schedule) {
				t.Errorf("%s: schedules differ between runs", name)
			}
			if !reflect.DeepEqual(r1, r2) {
				t.Errorf("%s: solve.Results differ between runs (beyond the schedule)", name)
			}
		})
	}
}

// scrubDurations zeroes every wall-clock reading in a solve.Result so that
// reflect.DeepEqual compares only the deterministic payload.
func scrubDurations(r *solve.Result) {
	r.SchedulingTime, r.FloorplanTime = 0, 0
	if s := r.Search; s != nil {
		s.Elapsed = 0
		for i := range s.History {
			s.History[i].Elapsed = time.Duration(0)
		}
	}
}
