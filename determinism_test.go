package repro

import (
	"reflect"
	"testing"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/sched"
	"resched/internal/schedule"
)

// TestSchedulerDeterminism is the behavioural counterpart of the reschedvet
// static checks: PA is a deterministic heuristic and PA-R is seeded, so two
// runs on the same 50-task graph must produce deeply equal schedules —
// task assignments, region definitions and reconfiguration slots included.
// The IS-k comparisons and the convergence experiments of EXPERIMENTS.md
// are meaningless without this property.
func TestSchedulerDeterminism(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 50, Seed: 424242})
	a := arch.ZedBoard()

	runPA := func() *schedule.Schedule {
		t.Helper()
		s, _, err := sched.Schedule(g, a, sched.Options{})
		if err != nil {
			t.Fatalf("PA: %v", err)
		}
		return s
	}
	// An iteration cap (not a wall-clock budget) keeps the PA-R workload
	// itself identical across the two runs.
	runPAR := func() *schedule.Schedule {
		t.Helper()
		s, _, err := sched.RSchedule(g, a, sched.RandomOptions{MaxIterations: 40, Seed: 7})
		if err != nil {
			t.Fatalf("PA-R: %v", err)
		}
		return s
	}

	assertEqual := func(name string, s1, s2 *schedule.Schedule) {
		t.Helper()
		if errs := schedule.Check(s1); len(errs) > 0 {
			t.Fatalf("%s produced an invalid schedule: %v", name, errs[0])
		}
		if !reflect.DeepEqual(s1.Regions, s2.Regions) {
			t.Errorf("%s: region definitions differ between runs:\n  run1: %v\n  run2: %v", name, s1.Regions, s2.Regions)
		}
		if !reflect.DeepEqual(s1.Tasks, s2.Tasks) {
			t.Errorf("%s: task assignments differ between runs", name)
		}
		if !reflect.DeepEqual(s1.Reconfs, s2.Reconfs) {
			t.Errorf("%s: reconfiguration slots differ between runs:\n  run1: %v\n  run2: %v", name, s1.Reconfs, s2.Reconfs)
		}
		if s1.Makespan != s2.Makespan {
			t.Errorf("%s: makespan %d vs %d", name, s1.Makespan, s2.Makespan)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Errorf("%s: schedules differ between runs (beyond the fields compared above)", name)
		}
	}

	assertEqual("PA", runPA(), runPA())
	assertEqual("PA-R", runPAR(), runPAR())
}
